//! Statistical validation: generated graphs must match their models'
//! published properties (degree laws, edge-count expectations, structure).

use kagen_repro::core::prelude::*;
use kagen_repro::graph::stats::{global_clustering, DegreeStats};
use kagen_repro::stats::{chi_square, chi_square_critical_001, power_law_alpha};

#[test]
fn gnp_degree_distribution_is_binomial() {
    // Out-degrees of directed G(n,p) are Binomial(n-1, p): chi-square GOF.
    let n = 3000u64;
    let p = 0.004;
    let el = generate_directed(&GnpDirected::new(n, p).with_seed(3).with_chunks(8));
    let degrees = el.out_degrees();
    let max_d = 40usize;
    let mut observed = vec![0u64; max_d + 1];
    for &d in &degrees {
        observed[(d as usize).min(max_d)] += 1;
    }
    // Binomial pmf via recurrence.
    let nn = (n - 1) as f64;
    let mut pmf = vec![0.0f64; max_d + 1];
    pmf[0] = (1.0 - p).powf(nn);
    for k in 1..=max_d {
        pmf[k] = pmf[k - 1] * ((nn - k as f64 + 1.0) / k as f64) * (p / (1.0 - p));
    }
    let tail: f64 = 1.0 - pmf.iter().sum::<f64>();
    pmf[max_d] += tail.max(0.0);
    let expected: Vec<f64> = pmf.iter().map(|q| q * n as f64).collect();
    let stat = chi_square(&observed, &expected);
    let crit = chi_square_critical_001(max_d);
    assert!(stat < crit, "chi2 {stat} >= {crit}");
}

#[test]
fn gnm_edge_count_exact_and_uniform_density() {
    let n = 2000u64;
    let m = 30_000u64;
    let el = generate_undirected(&GnmUndirected::new(n, m).with_seed(5).with_chunks(16));
    assert_eq!(el.edges.len() as u64, m);
    // Density must be uniform across the vertex space: compare edge mass
    // in the four quadrant blocks of the adjacency matrix.
    let half = n / 2;
    let mut blocks = [0u64; 3]; // low-low, cross, high-high
    for &(u, v) in &el.edges {
        match ((u < half) as u8) + ((v < half) as u8) {
            2 => blocks[0] += 1,
            1 => blocks[1] += 1,
            _ => blocks[2] += 1,
        }
    }
    // Expected proportions: within-half pairs are each C(half,2)/C(n,2) ≈ 1/4,
    // cross pairs ≈ 1/2.
    let total = m as f64;
    assert!((blocks[0] as f64 / total - 0.25).abs() < 0.02, "{blocks:?}");
    assert!((blocks[1] as f64 / total - 0.50).abs() < 0.02, "{blocks:?}");
    assert!((blocks[2] as f64 / total - 0.25).abs() < 0.02, "{blocks:?}");
}

#[test]
fn rgg_edge_count_matches_geometry() {
    // E[m] = C(n,2)·(area of r-ball ∩ unit square) ≈ n²πr²/2 for small r.
    let n = 5000u64;
    let r = 0.015;
    let el = generate_undirected(&Rgg2d::new(n, r).with_seed(7).with_chunks(16));
    let expect = (n * (n - 1)) as f64 / 2.0 * std::f64::consts::PI * r * r;
    let got = el.edges.len() as f64;
    // Boundary deficit reduces the count slightly; it must stay within
    // the interior approximation band.
    assert!(
        got > 0.9 * expect * (1.0 - 4.0 * r) && got < 1.05 * expect,
        "edges {got} vs interior estimate {expect}"
    );
}

#[test]
fn rgg_clustering_is_geometric() {
    // RGG clustering coefficient ≈ 1 − 3√3/(4π) ≈ 0.5865 independent of r.
    let n = 3000u64;
    let r = Rgg2d::threshold_radius(n, 1) * 1.5;
    let el = generate_undirected(&Rgg2d::new(n, r).with_seed(9).with_chunks(16));
    let c = global_clustering(&el);
    assert!((c - 0.5865).abs() < 0.06, "clustering {c}");
}

#[test]
fn rdg_2d_torus_is_exactly_triangulated() {
    let n = 2000u64;
    let el = generate_undirected(&Rdg2d::new(n).with_seed(11).with_chunks(16));
    assert_eq!(el.edges.len() as u64, 3 * n, "torus: E = 3n");
    let stats = DegreeStats::undirected(&el);
    assert!(stats.min >= 3);
    assert!((stats.mean - 6.0).abs() < 1e-9, "mean degree exactly 6");
}

#[test]
fn rdg_3d_degree_matches_poisson_delaunay() {
    let n = 1500u64;
    let el = generate_undirected(&Rdg3d::new(n).with_seed(13).with_chunks(8));
    let stats = DegreeStats::undirected(&el);
    // 2 + 48π²/35 ≈ 15.54 for Poisson–Delaunay in R³ (periodic = no
    // boundary effects).
    assert!(
        (stats.mean - 15.54).abs() < 0.8,
        "3D mean degree {} vs 15.54",
        stats.mean
    );
}

#[test]
fn rhg_degree_distribution_power_law() {
    let n = 30_000u64;
    for &gamma in &[2.4f64, 3.0] {
        let el = generate_undirected(&Rhg::new(n, 10.0, gamma).with_seed(17).with_chunks(8));
        let degrees = el.degrees_undirected();
        let alpha = power_law_alpha(&degrees, 12).expect("tail large enough");
        assert!(
            (alpha - gamma).abs() < 0.5,
            "γ target {gamma}, estimated {alpha}"
        );
    }
}

#[test]
fn rhg_average_degree_controlled() {
    // d̄ rises with the parameter; Eq. 2 has o(1) slack at finite n, so
    // check monotonic control rather than tight equality.
    let n = 10_000u64;
    let d4 = generate_undirected(&Rhg::new(n, 4.0, 2.8).with_seed(19).with_chunks(8));
    let d16 = generate_undirected(&Rhg::new(n, 16.0, 2.8).with_seed(19).with_chunks(8));
    let a4 = 2.0 * d4.edges.len() as f64 / n as f64;
    let a16 = 2.0 * d16.edges.len() as f64 / n as f64;
    assert!(
        a16 > 2.5 * a4,
        "degree parameter has too little effect: {a4} vs {a16}"
    );
    assert!(a4 > 1.0 && a4 < 16.0, "d̄=4 produced average {a4}");
    assert!(a16 > 6.0 && a16 < 64.0, "d̄=16 produced average {a16}");
}

#[test]
fn rhg_has_giant_clique_core() {
    // All vertices with r ≤ R/2 are pairwise adjacent.
    let gen = Rhg::new(5_000, 12.0, 2.5).with_seed(21).with_chunks(4);
    let el = generate_undirected(&gen);
    let inst = gen.instance();
    let mut core: Vec<u64> = Vec::new();
    for i in 0..inst.num_annuli() {
        for c in 0..inst.ann_cells[i] {
            for p in inst.cell_points(i, c) {
                if p.r <= inst.space.clique_radius() {
                    core.push(p.id);
                }
            }
        }
    }
    assert!(core.len() >= 2, "degenerate test: no clique core");
    let edge_set: std::collections::HashSet<(u64, u64)> = el.edges.iter().copied().collect();
    for i in 0..core.len() {
        for j in (i + 1)..core.len() {
            let e = (core[i].min(core[j]), core[i].max(core[j]));
            assert!(edge_set.contains(&e), "clique pair {e:?} missing");
        }
    }
}

#[test]
fn ba_recovers_preferential_attachment_exponent() {
    // BA in-degree tail has exponent 3.
    let el = generate_directed(&BarabasiAlbert::new(60_000, 4).with_seed(23).with_chunks(8));
    let mut deg = vec![0u64; 60_000];
    for &(u, v) in &el.edges {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let alpha = power_law_alpha(&deg, 16).expect("tail");
    assert!((alpha - 3.0).abs() < 0.5, "BA exponent {alpha} vs 3");
}

#[test]
fn rmat_block_mass_matches_probabilities() {
    // First-level quadrant masses must be ≈ (a, b, c, d).
    let (a, b, c) = (0.45, 0.25, 0.2);
    let el = generate_directed(
        &Rmat::with_probabilities(12, 100_000, a, b, c)
            .with_seed(25)
            .with_chunks(8),
    );
    let half = 1u64 << 11;
    let mut q = [0u64; 4];
    for &(u, v) in &el.edges {
        q[(((u >= half) as usize) << 1) | ((v >= half) as usize)] += 1;
    }
    let t = el.edges.len() as f64;
    assert!((q[0] as f64 / t - a).abs() < 0.01);
    assert!((q[1] as f64 / t - b).abs() < 0.01);
    assert!((q[2] as f64 / t - c).abs() < 0.01);
    assert!((q[3] as f64 / t - (1.0 - a - b - c)).abs() < 0.01);
}

#[test]
fn soft_rhg_preserves_power_law_and_melts_clustering() {
    // For T < 1 the soft model keeps the threshold model's degree
    // exponent γ = 2α + 1 while temperature lowers clustering (the model's
    // selling point: clustering becomes tunable independently of γ).
    let n = 20_000u64;
    let gamma = 2.6;
    let hard = generate_undirected(&Rhg::new(n, 10.0, gamma).with_seed(29).with_chunks(8));
    let soft = generate_undirected(
        &SoftRhg::new(n, 10.0, gamma, 0.7)
            .with_seed(29)
            .with_chunks(8),
    );
    let alpha = power_law_alpha(&soft.degrees_undirected(), 12).expect("tail large enough");
    assert!(
        (alpha - gamma).abs() < 0.6,
        "soft RHG exponent {alpha} strayed from γ = {gamma}"
    );
    let c_hard = global_clustering(&hard);
    let c_soft = global_clustering(&soft);
    assert!(
        c_soft < 0.75 * c_hard,
        "T=0.7 should melt clustering: {c_soft} vs threshold {c_hard}"
    );
    assert!(c_soft > 0.0, "soft model must retain some clustering");
}

#[test]
fn soft_rhg_truncation_error_negligible() {
    // Tightening ε below the default must not change the instance (the
    // dropped pairs all have connection probability < ε).
    let strict = generate_undirected(
        &SoftRhg::new(2_000, 8.0, 2.8, 0.5)
            .with_truncation(1e-12)
            .with_seed(31)
            .with_chunks(4),
    );
    let default = generate_undirected(
        &SoftRhg::new(2_000, 8.0, 2.8, 0.5)
            .with_seed(31)
            .with_chunks(4),
    );
    assert_eq!(strict, default, "ε=1e-9 truncation altered the instance");
}
