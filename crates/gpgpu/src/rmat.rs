//! GPGPU R-MAT generation — the linear-work kernel on the device.
//!
//! R-MAT is embarrassingly edge-parallel: every edge is a pure function of
//! `(instance seed, edge index)`, so the host only plans the grid — one
//! device block per [`kagen_core::rmat::SEED_BLOCK_EDGES`]-aligned slice of
//! the edge-index range, matching the per-block hashed reseed of the CPU
//! fill — and each block runs the same composed-table descent the CPU
//! kernel runs. Randomness is derived from decision identities, never from
//! execution order, so the concatenated device output is **bit-identical**
//! to [`kagen_core::Rmat::fill_edges`] for every kernel
//! ([`RmatKernel::Plain`], [`RmatKernel::Table`], [`RmatKernel::Linear`]) —
//! asserted in tests and smoked via `cmp` in CI.
//!
//! Device model notes: the composed alias table is built host-side once
//! and shared read-only by all blocks (on a real GPU it would live in
//! constant/L2 memory — it is L2-cache-sized by construction). Each draw
//! reads one 8-byte alias slot; each edge writes 16 bytes; the descent has
//! no data-dependent branching, so warps never diverge.

use crate::device::Device;
use kagen_core::rmat::SEED_BLOCK_EDGES;
use kagen_core::{Rmat, RmatKernel};

/// R-MAT on the simulated device, bit-identical to the CPU [`Rmat`].
#[derive(Clone, Debug)]
pub struct GpuRmat {
    inner: Rmat,
    m: u64,
}

impl GpuRmat {
    /// `n = 2^scale` vertices, `m` edges, Graph 500 probabilities, the
    /// linear-work kernel with `levels` path-block levels.
    pub fn new(scale: u32, m: u64, levels: u32) -> Self {
        Self::from_generator(Rmat::new(scale, m).with_kernel(RmatKernel::Linear { levels }))
    }

    /// Wrap an already-configured CPU generator (any kernel, seed,
    /// probabilities): the device reproduces exactly that instance.
    pub fn from_generator(inner: Rmat) -> Self {
        let m = inner.num_edges();
        GpuRmat { inner, m }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.with_seed(seed);
        self
    }

    /// Generate the whole instance on `dev`, in edge-index order — the
    /// byte-identical device twin of `fill_edges(0..m)`.
    pub fn generate(&self, dev: &Device) -> Vec<(u64, u64)> {
        // Host: grid planning only. One device block per seed block of
        // edge indices (the reseed granularity of the CPU fill).
        let jobs: Vec<(u64, u64)> = (0..self.m.div_ceil(SEED_BLOCK_EDGES))
            .map(|b| {
                let lo = b * SEED_BLOCK_EDGES;
                (lo, (lo + SEED_BLOCK_EDGES).min(self.m))
            })
            .collect();
        let inner = &self.inner;
        let draw_bytes = match inner.kernel() {
            // One fused 8-byte alias slot per table draw, remainder draw
            // included: ⌈scale/levels⌉ draws per edge.
            RmatKernel::Table { levels } | RmatKernel::Linear { levels } => {
                8 * inner.scale().div_ceil(levels) as usize
            }
            RmatKernel::Plain => 0,
        };
        let per_block: Vec<Vec<(u64, u64)>> = dev.launch(jobs, move |ctx, (lo, hi)| {
            let mut out = Vec::with_capacity((hi - lo) as usize);
            inner.fill_edges(lo..hi, &mut out);
            // Lockstep accounting: one lane per edge, no divergence (the
            // descent is branchless), table reads + the 16-byte store.
            ctx.simd_for(out.len(), |_| true);
            ctx.gmem_read(out.len() * draw_bytes);
            ctx.gmem_write(out.len() * 16);
            out
        });
        per_block.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn device_matches_cpu(gen: Rmat) {
        let dev = Device::new(DeviceConfig::default());
        let gpu = GpuRmat::from_generator(gen.clone()).generate(&dev);
        let mut cpu = Vec::new();
        gen.fill_edges(0..gen.num_edges(), &mut cpu);
        assert_eq!(gpu, cpu, "device stream must be bit-identical");
        assert!(dev.stats().blocks_executed > 0);
    }

    #[test]
    fn linear_kernel_bit_identical() {
        device_matches_cpu(
            Rmat::new(20, 3 * SEED_BLOCK_EDGES + 17)
                .with_seed(11)
                .with_kernel(RmatKernel::Linear { levels: 8 }),
        );
    }

    #[test]
    fn linear_kernel_bit_identical_large_scale() {
        device_matches_cpu(
            Rmat::new(34, SEED_BLOCK_EDGES + 5)
                .with_seed(3)
                .with_kernel(RmatKernel::Linear { levels: 7 }),
        );
    }

    #[test]
    fn plain_and_table_kernels_bit_identical() {
        device_matches_cpu(Rmat::new(12, 2 * SEED_BLOCK_EDGES).with_seed(7));
        device_matches_cpu(
            Rmat::new(12, 2 * SEED_BLOCK_EDGES)
                .with_seed(7)
                .with_kernel(RmatKernel::Table { levels: 5 }),
        );
    }

    #[test]
    fn accounts_table_reads() {
        let dev = Device::new(DeviceConfig::default());
        let m = SEED_BLOCK_EDGES;
        GpuRmat::new(20, m, 8).with_seed(1).generate(&dev);
        let s = dev.stats();
        // 20 levels / 8 per draw → 3 draws of 8 bytes per edge.
        assert_eq!(s.gmem_read, m * 24);
        assert_eq!(s.gmem_write, m * 16);
    }
}
