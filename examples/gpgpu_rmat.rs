//! R-MAT and BA on the simulated GPGPU device (§2.3): the linear-work
//! composed-table descent and the preferential-attachment chain resolver,
//! both bit-identical to their CPU generators.
//!
//! ```text
//! cargo run --release --example gpgpu_rmat [OUT_DIR]
//! ```
//!
//! R-MAT is the friendliest possible device kernel: every edge is a pure
//! function of `(seed, edge index)`, the composed alias table is built
//! host-side once (L2-cache-sized by construction, constant-memory
//! resident on a real GPU), and the descent has no data-dependent
//! branching — zero warp divergence. BA's recomputation chains *do*
//! diverge (chain lengths vary across a warp), which the device model
//! surfaces as divergent warp steps.
//!
//! With `OUT_DIR` set, the CPU and device edge streams are also written
//! as text files so an external `cmp` can verify bit-identity without
//! trusting this process's own `assert_eq!` — the CI smoke path.

use kagen_repro::gpgpu::{Device, DeviceConfig, GpuBarabasiAlbert, GpuRmat};
use kagen_repro::prelude::*;
use std::fmt::Write as _;

fn write_edges(dir: &std::path::Path, name: &str, edges: &[(u64, u64)]) {
    let mut text = String::with_capacity(edges.len() * 12);
    for &(u, v) in edges {
        let _ = writeln!(text, "{u} {v}");
    }
    std::fs::write(dir.join(name), text).expect("cannot write edge file");
}

fn main() {
    let out_dir = std::env::args().nth(1).map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("cannot create OUT_DIR");
    }
    let seed = 2018;

    // ---- R-MAT, linear-work kernel (scale 20) --------------------------
    let (scale, m) = (20u32, 1u64 << 18);
    let cpu_gen = Rmat::new(scale, m)
        .with_seed(seed)
        .with_kernel(RmatKernel::Linear { levels: 8 });
    let mut cpu = Vec::new();
    cpu_gen.fill_edges(0..m, &mut cpu);
    let dev = Device::new(DeviceConfig::default());
    let gpu = GpuRmat::from_generator(cpu_gen).generate(&dev);
    assert_eq!(gpu, cpu, "device must equal host");
    let s = dev.stats();
    println!("R-MAT scale=20 m=2^18, linear kernel (levels=8) on the device:");
    println!("  edges             {}", gpu.len());
    println!("  kernel launches   {}", s.kernel_launches);
    println!("  blocks executed   {}", s.blocks_executed);
    println!(
        "  divergent warps   {} of {} — branchless descent, lockstep warps",
        s.divergent_warps, s.warp_steps
    );
    println!(
        "  gmem read/written {} / {} MiB (alias draws / edge stores)",
        s.gmem_read >> 20,
        s.gmem_write >> 20
    );
    println!("  == CPU generator bit-for-bit\n");
    if let Some(dir) = &out_dir {
        write_edges(dir, "rmat_cpu.txt", &cpu);
        write_edges(dir, "rmat_gpu.txt", &gpu);
    }

    // ---- R-MAT beyond the scale-32 wall --------------------------------
    // The legacy interleaved table cannot represent these paths; the
    // composed kernel runs unchanged.
    let (scale, m) = (34u32, 1u64 << 16);
    let cpu_gen = Rmat::new(scale, m)
        .with_seed(seed)
        .with_kernel(RmatKernel::Linear { levels: 8 });
    let mut cpu = Vec::new();
    cpu_gen.fill_edges(0..m, &mut cpu);
    let dev = Device::new(DeviceConfig::default());
    let gpu = GpuRmat::from_generator(cpu_gen).generate(&dev);
    assert_eq!(gpu, cpu, "device must equal host at scale 34");
    println!("R-MAT scale=34 m=2^16 (composed-only territory):");
    println!("  edges             {}", gpu.len());
    println!("  == CPU generator bit-for-bit\n");
    if let Some(dir) = &out_dir {
        write_edges(dir, "rmat_s34_cpu.txt", &cpu);
        write_edges(dir, "rmat_s34_gpu.txt", &gpu);
    }

    // ---- Barabási–Albert chain resolution ------------------------------
    let (n, d) = (1u64 << 14, 8u64);
    let cpu_gen = BarabasiAlbert::new(n, d).with_seed(seed);
    let mut cpu = Vec::new();
    cpu_gen.fill_edges(0..n * d, &mut cpu);
    let dev = Device::new(DeviceConfig::default());
    let gpu = GpuBarabasiAlbert::new(n, d).with_seed(seed).generate(&dev);
    assert_eq!(gpu, cpu, "device must equal host");
    let s = dev.stats();
    println!("BA n=2^14 d=8, recomputation chains on the device:");
    println!("  edge slots        {}", gpu.len());
    println!("  blocks executed   {}", s.blocks_executed);
    println!(
        "  divergent warps   {} of {} ({:.1}%) — chain lengths vary per lane",
        s.divergent_warps,
        s.warp_steps,
        100.0 * s.divergent_warps as f64 / s.warp_steps.max(1) as f64
    );
    println!("  == CPU generator bit-for-bit");
    if let Some(dir) = &out_dir {
        write_edges(dir, "ba_cpu.txt", &cpu);
        write_edges(dir, "ba_gpu.txt", &gpu);
    }
}
