//! Accelerator offloading (§2.3, §4.3.1, §5.3): run the ER and RGG
//! pipelines on the simulated GPGPU device and compare against the CPU
//! generators.
//!
//! ```text
//! cargo run --release --example accelerator_offload
//! ```
//!
//! The paper's accelerator model assumes every PE owns a GPU to offload
//! bulk sampling to, while "the CPU is considered the main processing and
//! steering facility". This example shows that division of labor: the host
//! runs the divide-and-conquer count recursions (cheap, O(blocks)), the
//! device runs the embarrassingly block-parallel sampling — and because
//! all randomness is derived from decision identities, the device output
//! is **bit-identical** to the CPU generators.

use kagen_repro::gpgpu::{Device, DeviceConfig, GpuGnmDirected, GpuRgg2d};
use kagen_repro::prelude::*;

fn main() {
    let seed = 2018;

    // ---- Erdős–Rényi G(n,m) (§4.3.1) ----------------------------------
    let (n, m) = (1u64 << 16, 1u64 << 20);
    let dev = Device::new(DeviceConfig::default());
    let mut gpu_edges = GpuGnmDirected::new(n, m).with_seed(seed).generate(&dev);
    gpu_edges.sort_unstable();
    let cpu_edges = generate_directed(&GnmDirected::new(n, m).with_seed(seed));
    assert_eq!(gpu_edges, cpu_edges.edges, "device must equal host");
    let s = dev.stats();
    println!("G(n,m) n=2^16 m=2^20 on the simulated device:");
    println!("  edges             {}", gpu_edges.len());
    println!("  kernel launches   {}", s.kernel_launches);
    println!("  blocks executed   {}", s.blocks_executed);
    println!("  warp steps        {}", s.warp_steps);
    println!(
        "  divergent warps   {} ({:.2}%)",
        s.divergent_warps,
        100.0 * s.divergent_warps as f64 / s.warp_steps.max(1) as f64
    );
    println!("  gmem written      {} MiB", s.gmem_write >> 20);
    println!("  == CPU generator bit-for-bit\n");

    // ---- Random geometric graph (§5.3 three-phase pipeline) ------------
    let rgg_n = 1u64 << 14;
    let r = Rgg2d::threshold_radius(rgg_n, 1);
    let dev = Device::new(DeviceConfig::default());
    let gpu_rgg = GpuRgg2d::new(rgg_n, r).with_seed(seed).generate(&dev);
    let cpu_rgg = generate_undirected(&Rgg2d::new(rgg_n, r).with_seed(seed));
    assert_eq!(gpu_rgg, cpu_rgg.edges, "device must equal host");
    let s = dev.stats();
    println!("RGG 2D n=2^14 r={r:.4} (count → device scan → fill):");
    println!("  edges             {}", gpu_rgg.len());
    println!(
        "  kernel launches   {} (points, count, 3×scan, fill)",
        s.kernel_launches
    );
    println!("  blocks executed   {}", s.blocks_executed);
    println!(
        "  divergent warps   {} of {} ({:.1}%) — distance tests mix hits and misses",
        s.divergent_warps,
        s.warp_steps,
        100.0 * s.divergent_warps as f64 / s.warp_steps.max(1) as f64
    );
    println!(
        "  gmem read/written {} / {} MiB",
        s.gmem_read >> 20,
        s.gmem_write >> 20
    );
    println!("  == CPU generator bit-for-bit");
}
