//! Hyperbolic plane toolbox for the RHG generators (§7, Appendix A/B).
//!
//! The threshold random hyperbolic graph places `n` points on a disk of
//! radius `R = 2 ln n + C` with radial density
//! `f(r) = α sinh(αr)/(cosh(αR) − 1)` and connects two points iff their
//! hyperbolic distance (Eq. 4) is below `R`. The power-law exponent is
//! `γ = 2α + 1`, and `C` controls the average degree via Eq. 2.

use kagen_util::Rng64;

/// Instance geometry shared by RHG and sRHG.
#[derive(Clone, Debug)]
pub struct RhgSpace {
    /// Number of points.
    pub n: u64,
    /// Dispersion α = (γ − 1)/2 > 1/2.
    pub alpha: f64,
    /// Target average degree d̄.
    pub avg_deg: f64,
    /// Disk radius R.
    pub r_max: f64,
    /// cosh(R), precomputed for adjacency tests.
    pub cosh_r: f64,
    /// Annulus boundaries: `bounds[i]..bounds[i+1]` is annulus i
    /// (equal-height annuli, k = ⌊αR/ln 2⌋ of them, §7.1).
    pub bounds: Vec<f64>,
}

impl RhgSpace {
    /// Build the geometry from the user-facing parameters.
    ///
    /// `gamma` must exceed 2 (so α > 1/2) and `avg_deg` must be positive.
    pub fn new(n: u64, avg_deg: f64, gamma: f64) -> Self {
        assert!(n >= 2);
        assert!(gamma > 2.0, "power-law exponent must be > 2 (α > 1/2)");
        assert!(avg_deg > 0.0);
        let alpha = (gamma - 1.0) / 2.0;
        // Eq. 2 solved for C:
        //   d̄ = (2/π) [α/(α−1/2)]² e^{−C/2}
        //   C = −2 ln( d̄ (π/2) [(α−1/2)/α]² )
        let ratio = (alpha - 0.5) / alpha;
        let c = -2.0 * (avg_deg * std::f64::consts::FRAC_PI_2 * ratio * ratio).ln();
        let r_max = 2.0 * (n as f64).ln() + c;
        assert!(r_max > 0.0, "degenerate geometry: R <= 0");
        let k = ((alpha * r_max) / std::f64::consts::LN_2).floor().max(1.0) as usize;
        let mut bounds = Vec::with_capacity(k + 1);
        for i in 0..=k {
            bounds.push(r_max * i as f64 / k as f64);
        }
        RhgSpace {
            n,
            alpha,
            avg_deg,
            r_max,
            cosh_r: r_max.cosh(),
            bounds,
        }
    }

    /// Number of annuli.
    pub fn num_annuli(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Probability mass of annulus `i` under the radial density (the `p_i`
    /// of §7.1).
    pub fn annulus_prob(&self, i: usize) -> f64 {
        let denom = (self.alpha * self.r_max).cosh() - 1.0;
        let lo = (self.alpha * self.bounds[i]).cosh();
        let hi = (self.alpha * self.bounds[i + 1]).cosh();
        (hi - lo) / denom
    }

    /// Radial CDF μ(B_r(0)) (Eq. B.2 exact form).
    pub fn radial_cdf(&self, r: f64) -> f64 {
        ((self.alpha * r).cosh() - 1.0) / ((self.alpha * self.r_max).cosh() - 1.0)
    }

    /// Sample a radius conditioned on `lo <= r < hi` by CDF inversion.
    pub fn sample_radius_in<R: Rng64>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        let a = self.alpha;
        let clo = (a * lo).cosh();
        let chi = (a * hi).cosh();
        let u = rng.next_f64_open();
        let r = ((clo + u * (chi - clo)).acosh()) / a;
        // Guard against r == 0 exactly (sinh would vanish in Eq. 9).
        r.max(1e-12).min(self.r_max)
    }

    /// Hyperbolic distance between polar points (Eq. 4).
    pub fn distance(&self, p: (f64, f64), q: (f64, f64)) -> f64 {
        let (rp, tp) = p;
        let (rq, tq) = q;
        let arg = rp.cosh() * rq.cosh() - rp.sinh() * rq.sinh() * (tp - tq).cos();
        arg.max(1.0).acosh()
    }

    /// Maximum angular deviation Δθ(r, b) for a neighbor at radius `b`
    /// (Eq. A.3 / Eq. 8): beyond this deviation the hyperbolic distance
    /// necessarily exceeds R.
    pub fn delta_theta(&self, r: f64, b: f64) -> f64 {
        self.delta_theta_at(r, b, self.r_max, self.cosh_r)
    }

    /// Δθ(r, b) against an arbitrary distance threshold `dist` (with
    /// `cosh_dist = cosh(dist)` precomputed). The soft/binomial RHG model
    /// queries with an *enlarged* threshold `R + O(T)` so that pairs with
    /// non-negligible connection probability are all enumerated.
    pub fn delta_theta_at(&self, r: f64, b: f64, dist: f64, cosh_dist: f64) -> f64 {
        if r + b < dist {
            return std::f64::consts::PI;
        }
        let arg = (r.cosh() * b.cosh() - cosh_dist) / (r.sinh() * b.sinh());
        arg.clamp(-1.0, 1.0).acos()
    }

    /// Radius below which all points form a clique (r ≤ R/2: any two such
    /// points have distance ≤ r_p + r_q ≤ R).
    pub fn clique_radius(&self) -> f64 {
        self.r_max / 2.0
    }
}

/// A point with the §7.2.1 precomputations for trig-free adjacency tests.
#[derive(Clone, Copy, Debug)]
pub struct PrePoint {
    /// Radial coordinate.
    pub r: f64,
    /// Angular coordinate in [0, 2π).
    pub theta: f64,
    /// coth(r).
    pub coth_r: f64,
    /// 1/sinh(r).
    pub inv_sinh_r: f64,
    /// cos(θ).
    pub cos_theta: f64,
    /// sin(θ).
    pub sin_theta: f64,
    /// Global vertex id.
    pub id: u64,
}

impl PrePoint {
    /// Precompute the Eq. 9 terms for a polar point.
    pub fn new(r: f64, theta: f64, id: u64) -> Self {
        let sinh_r = r.sinh();
        PrePoint {
            r,
            theta,
            coth_r: r.cosh() / sinh_r,
            inv_sinh_r: 1.0 / sinh_r,
            cos_theta: theta.cos(),
            sin_theta: theta.sin(),
            id,
        }
    }

    /// Trig-free adjacency test (Eq. 9): five multiplications, two adds.
    #[inline(always)]
    pub fn is_adjacent(&self, other: &PrePoint, cosh_r_max: f64) -> bool {
        let lhs = self.cos_theta * other.cos_theta + self.sin_theta * other.sin_theta;
        let rhs = self.coth_r * other.coth_r - cosh_r_max * self.inv_sinh_r * other.inv_sinh_r;
        lhs > rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    fn space() -> RhgSpace {
        RhgSpace::new(1 << 14, 16.0, 3.0)
    }

    #[test]
    fn geometry_basics() {
        let s = space();
        assert!((s.alpha - 1.0).abs() < 1e-12);
        assert!(s.r_max > 0.0);
        assert!(s.num_annuli() >= 1);
        assert_eq!(s.bounds[0], 0.0);
        assert!((s.bounds[s.num_annuli()] - s.r_max).abs() < 1e-12);
    }

    #[test]
    fn annulus_probs_sum_to_one() {
        let s = space();
        let sum: f64 = (0..s.num_annuli()).map(|i| s.annulus_prob(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn radial_cdf_endpoints_and_monotone() {
        let s = space();
        assert!(s.radial_cdf(0.0).abs() < 1e-12);
        assert!((s.radial_cdf(s.r_max) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 1..=100 {
            let r = s.r_max * i as f64 / 100.0;
            let c = s.radial_cdf(r);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn sampled_radius_in_bounds_and_distributed() {
        let s = space();
        let mut rng = Mt64::new(1);
        let (lo, hi) = (s.bounds[2], s.bounds[3]);
        let mut below_mid = 0u32;
        let reps = 20_000;
        for _ in 0..reps {
            let r = s.sample_radius_in(&mut rng, lo, hi);
            assert!(r >= lo && r <= hi);
            if s.radial_cdf(r) < (s.radial_cdf(lo) + s.radial_cdf(hi)) / 2.0 {
                below_mid += 1;
            }
        }
        // By construction of CDF inversion, the conditional CDF midpoint
        // splits samples 50/50.
        let frac = below_mid as f64 / reps as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn distance_symmetric_and_zero_on_self() {
        let s = space();
        let p = (s.r_max * 0.7, 1.0);
        let q = (s.r_max * 0.4, 4.5);
        assert!((s.distance(p, q) - s.distance(q, p)).abs() < 1e-9);
        assert!(s.distance(p, p) < 1e-6);
    }

    #[test]
    fn delta_theta_pi_for_near_origin() {
        let s = space();
        // Both radii small: the query circle covers all angles.
        assert_eq!(s.delta_theta(0.1, 0.1), std::f64::consts::PI);
    }

    #[test]
    fn delta_theta_bounds_adjacency() {
        // If |Δθ| > Δθ(r_p, r_q) then the points are NOT adjacent.
        let s = space();
        let mut rng = Mt64::new(2);
        for _ in 0..2000 {
            let rp = s.sample_radius_in(&mut rng, 0.0, s.r_max);
            let rq = s.sample_radius_in(&mut rng, 0.0, s.r_max);
            let dt = s.delta_theta(rp, rq);
            if dt < std::f64::consts::PI - 1e-9 {
                let eps = 1e-6;
                let d = s.distance((rp, 0.0), (rq, dt + eps));
                assert!(
                    d >= s.r_max - 1e-6,
                    "beyond Δθ must be non-adjacent: d={d} R={}",
                    s.r_max
                );
            }
        }
    }

    #[test]
    fn eq9_matches_eq4() {
        // The trig-free test must agree with the direct distance test.
        let s = space();
        let mut rng = Mt64::new(3);
        let mut adjacent = 0u32;
        for i in 0..5000 {
            let rp = s.sample_radius_in(&mut rng, 0.0, s.r_max);
            let rq = s.sample_radius_in(&mut rng, 0.0, s.r_max);
            let tp = rng.next_f64() * std::f64::consts::TAU;
            let tq = rng.next_f64() * std::f64::consts::TAU;
            let p = PrePoint::new(rp, tp, 0);
            let q = PrePoint::new(rq, tq, 1);
            let direct = s.distance((rp, tp), (rq, tq)) < s.r_max;
            let fast = p.is_adjacent(&q, s.cosh_r);
            // Allow disagreement only within float tolerance of the
            // threshold.
            if direct != fast {
                let d = s.distance((rp, tp), (rq, tq));
                assert!(
                    (d - s.r_max).abs() < 1e-6,
                    "iter {i}: disagree far from threshold: d={d}"
                );
            }
            adjacent += fast as u32;
        }
        assert!(adjacent > 0, "degenerate test: no adjacent pairs at all");
    }

    #[test]
    fn clique_property() {
        // Any two points with r <= R/2 are adjacent.
        let s = space();
        let mut rng = Mt64::new(4);
        for _ in 0..500 {
            let rp = s.sample_radius_in(&mut rng, 0.0, s.clique_radius());
            let rq = s.sample_radius_in(&mut rng, 0.0, s.clique_radius());
            let tp = rng.next_f64() * std::f64::consts::TAU;
            let tq = rng.next_f64() * std::f64::consts::TAU;
            assert!(s.distance((rp, tp), (rq, tq)) <= s.r_max + 1e-9);
        }
    }

    #[test]
    fn avg_degree_formula_inverts() {
        // Reconstruct d̄ from C via Eq. 2 and compare.
        for &(deg, gamma) in &[(16.0, 3.0), (256.0, 2.2), (8.0, 2.6)] {
            let s = RhgSpace::new(1 << 16, deg, gamma);
            let c = s.r_max - 2.0 * (s.n as f64).ln();
            let ratio = s.alpha / (s.alpha - 0.5);
            let recovered = 2.0 / std::f64::consts::PI * ratio * ratio * (-c / 2.0).exp();
            assert!(
                (recovered - deg).abs() / deg < 1e-9,
                "γ={gamma}: {recovered} vs {deg}"
            );
        }
    }
}
