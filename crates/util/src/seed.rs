//! Seed derivation: the glue of the communication-free paradigm.
//!
//! Every random decision in a KaGen generator is identified by a small tuple
//! of integers — e.g. `(instance seed, generator tag, recursion node id)` —
//! and the PRNG making that decision is seeded with the SpookyHash of the
//! tuple (§2.2 of the paper). PEs that replay the same decision derive the
//! same seed and therefore the same variate, with no messages exchanged.
//!
//! [`SeedTree`] is a convenience wrapper for hierarchical recursions: child
//! nodes extend the parent's identity, so distinct subtrees are independent
//! while a subtree's seeds are reproducible from its root id alone.

use crate::hash::spooky_hash_words;
use crate::mt::Mt64;

/// Derive a 64-bit seed from a base seed and an identity tuple.
#[inline]
pub fn derive_seed(base: u64, tags: &[u64]) -> u64 {
    spooky_hash_words(tags, base)
}

/// Seed a Mersenne Twister for the decision identified by `tags`.
#[inline]
pub fn rng_at(base: u64, tags: &[u64]) -> Mt64 {
    Mt64::new(derive_seed(base, tags))
}

/// Well-known stream tags, so different generator components never collide
/// in seed space even when their numeric node ids coincide.
pub mod stream {
    /// Hypergeometric splitting recursion (ER generators, block sampler).
    pub const SPLIT: u64 = 0x01;
    /// Leaf sampling (Algorithm D within a chunk).
    pub const SAMPLE: u64 = 0x02;
    /// Binomial count-splitting trees (spatial generators).
    pub const COUNT: u64 = 0x03;
    /// Point coordinate generation within a cell.
    pub const POINT: u64 = 0x04;
    /// Barabási–Albert edge-slot resolution.
    pub const BA: u64 = 0x05;
    /// R-MAT per-edge descent.
    pub const RMAT: u64 = 0x06;
    /// Radial/annulus decisions of the hyperbolic generators.
    pub const HYP: u64 = 0x07;
    /// Miscellaneous / baseline generators.
    pub const MISC: u64 = 0x08;
}

/// A node in a seeded recursion tree.
///
/// The root is created from the instance seed and a stream tag; children are
/// addressed by their index. Node identity is the path-independent pair
/// `(level, rank)` in a complete k-ary tree, hashed together with the stream
/// tag, which matches the paper's "unique seed value per recursion subtree"
/// (independent of which PE walks the tree).
#[derive(Clone, Copy, Debug)]
pub struct SeedTree {
    base: u64,
    stream: u64,
    level: u64,
    rank: u64,
    arity: u64,
}

impl SeedTree {
    /// Root of a `arity`-ary recursion for a given stream.
    pub fn root(base: u64, stream: u64, arity: u64) -> Self {
        assert!(arity >= 2);
        SeedTree {
            base,
            stream,
            level: 0,
            rank: 0,
            arity,
        }
    }

    /// The `i`-th child node (`i < arity`).
    #[inline]
    pub fn child(&self, i: u64) -> Self {
        debug_assert!(i < self.arity);
        SeedTree {
            base: self.base,
            stream: self.stream,
            level: self.level + 1,
            rank: self.rank * self.arity + i,
            arity: self.arity,
        }
    }

    /// Depth of this node (root = 0).
    #[inline]
    pub fn level(&self) -> u64 {
        self.level
    }

    /// Rank of this node among its level (left to right).
    #[inline]
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// The seed of this node.
    #[inline]
    pub fn seed(&self) -> u64 {
        derive_seed(self.base, &[self.stream, self.level, self.rank])
    }

    /// A Mersenne Twister seeded for this node.
    #[inline]
    pub fn rng(&self) -> Mt64 {
        Mt64::new(self.seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn path_independence() {
        // The same node reached through the same path on two "PEs" must give
        // the same seed; this is the crux of communication freedom.
        let a = SeedTree::root(42, stream::SPLIT, 2).child(1).child(0);
        let b = SeedTree::root(42, stream::SPLIT, 2).child(1).child(0);
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn sibling_independence() {
        let root = SeedTree::root(42, stream::SPLIT, 4);
        let seeds: Vec<u64> = (0..4).map(|i| root.child(i).seed()).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn stream_separation() {
        let split = SeedTree::root(42, stream::SPLIT, 2).child(0);
        let count = SeedTree::root(42, stream::COUNT, 2).child(0);
        assert_ne!(split.seed(), count.seed());
    }

    #[test]
    fn level_rank_disambiguation() {
        // Node (level 2, rank 0) must differ from (level 1, rank 0).
        let root = SeedTree::root(7, stream::COUNT, 2);
        assert_ne!(root.child(0).seed(), root.child(0).child(0).seed());
    }

    #[test]
    fn rng_reproducibility() {
        let node = SeedTree::root(9, stream::SAMPLE, 2).child(1);
        let a = node.rng().take_vec(8);
        let b = node.rng().take_vec(8);
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_distinct_tuples() {
        // (1,2) vs (2,1) vs (1,2,0): all distinct.
        let s1 = derive_seed(0, &[1, 2]);
        let s2 = derive_seed(0, &[2, 1]);
        let s3 = derive_seed(0, &[1, 2, 0]);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s2, s3);
    }
}
