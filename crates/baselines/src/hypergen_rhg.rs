//! HyperGen-style streaming RHG (Penschuck \[24\]).
//!
//! The same request-centric sweep idea as sRHG, but with the event
//! processing HyperGen's description predates in sRHG: requests live in a
//! per-annulus *priority queue* ordered by expiry and are popped per node
//! event, instead of sRHG's per-cell batch compaction over a flat
//! structure-of-arrays state. Serves as the fourth series of Fig. 14 and
//! as the ablation partner for the batch-processing optimization
//! (§7.2.1).

use kagen_core::rhg::common::RhgInstance;
use kagen_geometry::hyperbolic::PrePoint;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy)]
struct Req {
    end: f64,
    p: PrePoint,
    ann: usize,
}

/// Ordered by expiry angle for the priority queue.
#[derive(PartialEq)]
struct ByEnd(f64, usize);
impl Eq for ByEnd {}
impl PartialOrd for ByEnd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByEnd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Generate the full edge list of the instance sequentially (HyperGen is a
/// shared-memory generator; the Fig. 14 comparison runs all competitors on
/// one machine). Returns canonical undirected edges.
pub fn hypergen_edges(inst: &RhgInstance) -> Vec<(u64, u64)> {
    let annuli = inst.num_annuli();
    let cosh_r = inst.space.cosh_r;
    let tau = std::f64::consts::TAU;
    let mut edges: Vec<(u64, u64)> = Vec::new();

    // All points, grouped and θ-sorted per annulus.
    let bands: Vec<Vec<PrePoint>> = (0..annuli)
        .map(|i| {
            let mut v: Vec<PrePoint> = (0..inst.ann_cells[i])
                .flat_map(|c| inst.cell_points(i, c))
                .collect();
            v.sort_by(|a, b| a.theta.total_cmp(&b.theta));
            v
        })
        .collect();

    // Requests into annulus j from every point of annulus i ≤ j, split at
    // the 2π wrap.
    for j in 0..annuli {
        if bands[j].is_empty() {
            continue;
        }
        let mut reqs: Vec<(f64, Req)> = Vec::new();
        for (i, band) in bands.iter().enumerate().take(j + 1) {
            let b = inst.space.bounds[j].max(1e-12);
            for p in band {
                let dt = inst.space.delta_theta(p.r, b);
                let (lo, hi) = (p.theta - dt, p.theta + dt);
                let req = Req {
                    end: hi,
                    p: *p,
                    ann: i,
                };
                if 2.0 * dt >= tau {
                    reqs.push((0.0, Req { end: tau, ..req }));
                } else if lo < 0.0 {
                    reqs.push((lo + tau, Req { end: tau, ..req }));
                    reqs.push((0.0, Req { end: hi, ..req }));
                } else if hi > tau {
                    reqs.push((lo, Req { end: tau, ..req }));
                    reqs.push((
                        0.0,
                        Req {
                            end: hi - tau,
                            ..req
                        },
                    ));
                } else {
                    reqs.push((lo, req));
                }
            }
        }
        reqs.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Sweep: priority queue keyed by expiry; pop per node event.
        let mut active: Vec<Req> = Vec::new();
        let mut expiry: BinaryHeap<Reverse<ByEnd>> = BinaryHeap::new();
        let mut alive: Vec<bool> = Vec::new();
        let mut next = 0usize;
        for v in &bands[j] {
            while next < reqs.len() && reqs[next].0 <= v.theta {
                let idx = active.len();
                active.push(reqs[next].1);
                alive.push(true);
                expiry.push(Reverse(ByEnd(reqs[next].1.end, idx)));
                next += 1;
            }
            while let Some(Reverse(ByEnd(end, idx))) = expiry.peek() {
                if *end < v.theta {
                    alive[*idx] = false;
                    expiry.pop();
                } else {
                    break;
                }
            }
            for (idx, r) in active.iter().enumerate() {
                if !alive[idx] || r.end < v.theta {
                    continue;
                }
                let u = &r.p;
                if u.id == v.id {
                    continue;
                }
                let emit = if r.ann < j { true } else { u.id < v.id };
                if emit && u.is_adjacent(v, cosh_r) {
                    edges.push((u.id.min(v.id), u.id.max(v.id)));
                }
            }
            // Compact when mostly dead (keeps the scan linear without
            // giving the baseline sRHG's batched state management).
            if active.len() > 64 && alive.iter().filter(|&&a| a).count() * 2 < active.len() {
                let mut new_active = Vec::with_capacity(active.len() / 2);
                for (idx, r) in active.iter().enumerate() {
                    if alive[idx] && r.end >= v.theta {
                        new_active.push(*r);
                    }
                }
                active = new_active;
                alive = vec![true; active.len()];
                expiry.clear();
                for (idx, r) in active.iter().enumerate() {
                    expiry.push(Reverse(ByEnd(r.end, idx)));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_core::{generate_undirected, Srhg};

    #[test]
    fn matches_srhg() {
        let gen = Srhg::new(500, 8.0, 2.8).with_seed(5).with_chunks(4);
        let srhg = generate_undirected(&gen);
        let hg = hypergen_edges(&gen.instance());
        assert_eq!(srhg.edges, hg);
    }

    #[test]
    fn deterministic() {
        let gen = Srhg::new(300, 6.0, 3.0).with_seed(2);
        assert_eq!(
            hypergen_edges(&gen.instance()),
            hypergen_edges(&gen.instance())
        );
    }
}
