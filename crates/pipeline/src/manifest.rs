//! The shard-directory manifest: a JSON file describing one sharded
//! generation run (model, parameters, seed, format, per-shard edge counts
//! and checksums) so shards can be validated and reassembled later —
//! including by tools that never saw the generator.
//!
//! Serialization is hand-rolled (the build environment vendors no serde):
//! [`Manifest::to_json`] emits canonical JSON and [`Manifest::from_json`]
//! parses the subset of JSON that `to_json` produces (objects, arrays,
//! strings with escapes, unsigned integers, booleans).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// File name of the manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One shard's metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// The PE (chunk) index this shard holds.
    pub pe: u64,
    /// File name relative to the shard directory.
    pub file: String,
    /// Number of edges in the shard.
    pub edges: u64,
    /// Order-dependent checksum of the shard's edge stream
    /// (see `kagen_pipeline::sink::checksum_step`).
    pub checksum: u64,
}

/// Metadata of a complete sharded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Model name (e.g. `rmat`, `gnm_undirected`).
    pub model: String,
    /// Human-readable parameter string (e.g. `n=1048576 m=16777216`).
    pub params: String,
    /// Instance seed.
    pub seed: u64,
    /// Vertex count.
    pub n: u64,
    /// Whether the edges are directed.
    pub directed: bool,
    /// Number of logical PEs == number of shards.
    pub chunks: u64,
    /// Shard format name (`edge-list`, `binary`, `compressed`).
    pub format: String,
    /// Total edge count over all shards.
    pub edges: u64,
    /// Per-shard metadata, in PE order.
    pub shards: Vec<ShardInfo>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Manifest {
    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = write!(s, "  \"model\": ");
        push_str_value(&mut s, &self.model);
        let _ = write!(s, ",\n  \"params\": ");
        push_str_value(&mut s, &self.params);
        let _ = write!(s, ",\n  \"seed\": {},", self.seed);
        let _ = write!(s, "\n  \"n\": {},", self.n);
        let _ = write!(s, "\n  \"directed\": {},", self.directed);
        let _ = write!(s, "\n  \"chunks\": {},", self.chunks);
        let _ = write!(s, "\n  \"format\": ");
        push_str_value(&mut s, &self.format);
        let _ = write!(s, ",\n  \"edges\": {},", self.edges);
        s.push_str("\n  \"shards\": [\n");
        for (i, sh) in self.shards.iter().enumerate() {
            let _ = write!(s, "    {{\"pe\": {}, \"file\": ", sh.pe);
            push_str_value(&mut s, &sh.file);
            let _ = write!(
                s,
                ", \"edges\": {}, \"checksum\": {}}}{}",
                sh.edges,
                sh.checksum,
                if i + 1 < self.shards.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse from JSON (inverse of [`Manifest::to_json`]).
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj("manifest")?;
        let shards_value = obj.get("shards")?;
        let mut shards = Vec::new();
        for (i, sh) in shards_value.as_arr("shards")?.iter().enumerate() {
            let sh = sh.as_obj(&format!("shards[{i}]"))?;
            shards.push(ShardInfo {
                pe: sh.get("pe")?.as_u64("pe")?,
                file: sh.get("file")?.as_str("file")?.to_string(),
                edges: sh.get("edges")?.as_u64("edges")?,
                checksum: sh.get("checksum")?.as_u64("checksum")?,
            });
        }
        Ok(Manifest {
            model: obj.get("model")?.as_str("model")?.to_string(),
            params: obj.get("params")?.as_str("params")?.to_string(),
            seed: obj.get("seed")?.as_u64("seed")?,
            n: obj.get("n")?.as_u64("n")?,
            directed: obj.get("directed")?.as_bool("directed")?,
            chunks: obj.get("chunks")?.as_u64("chunks")?,
            format: obj.get("format")?.as_str("format")?.to_string(),
            edges: obj.get("edges")?.as_u64("edges")?,
            shards,
        })
    }

    /// Write `manifest.json` into `dir`.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::write(dir.join(MANIFEST_FILE), self.to_json())
    }

    /// Load `manifest.json` from `dir`.
    pub fn load(dir: &Path) -> io::Result<Manifest> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        Manifest::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn push_str_value(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

mod json {
    //! Minimal JSON parser for the manifest subset.

    /// A parsed JSON value.
    #[derive(Clone, Debug)]
    pub enum Value {
        /// Object as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
        /// Array.
        Arr(Vec<Value>),
        /// String.
        Str(String),
        /// Unsigned integer (all numbers the manifest emits).
        Num(u64),
        /// Boolean.
        Bool(bool),
    }

    /// Accessor helpers for the typed object view.
    pub struct Obj<'a>(&'a [(String, Value)]);

    impl<'a> Obj<'a> {
        /// Look up a required key.
        pub fn get(&self, key: &str) -> Result<&'a Value, String> {
            self.0
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("manifest: missing key '{key}'"))
        }
    }

    impl Value {
        /// View as object.
        pub fn as_obj(&self, what: &str) -> Result<Obj<'_>, String> {
            match self {
                Value::Obj(fields) => Ok(Obj(fields)),
                _ => Err(format!("manifest: {what} is not an object")),
            }
        }

        /// View as array.
        pub fn as_arr(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(format!("manifest: {what} is not an array")),
            }
        }

        /// View as string.
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("manifest: {what} is not a string")),
            }
        }

        /// View as unsigned integer.
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Num(x) => Ok(*x),
                _ => Err(format!("manifest: {what} is not an integer")),
            }
        }

        /// View as boolean.
        pub fn as_bool(&self, what: &str) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err(format!("manifest: {what} is not a boolean")),
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' | b'f' => self.boolean(),
                b'0'..=b'9' => self.number(),
                c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                fields.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err("unterminated string".to_string());
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err("unterminated escape".to_string());
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                self.pos += 4;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            }
                            c => return Err(format!("bad escape '\\{}'", c as char)),
                        }
                    }
                    b => {
                        // Re-assemble UTF-8 multibyte sequences verbatim.
                        let start = self.pos - 1;
                        let len = match b {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let slice = self
                            .bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                        self.pos = start + len;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(format!("expected number at byte {start}"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .unwrap()
                .parse::<u64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number: {e}"))
        }

        fn boolean(&mut self) -> Result<Value, String> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"true") {
                self.pos += 4;
                Ok(Value::Bool(true))
            } else if self.bytes[self.pos..].starts_with(b"false") {
                self.pos += 5;
                Ok(Value::Bool(false))
            } else {
                Err(format!("expected boolean at byte {}", self.pos))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            model: "rmat".to_string(),
            params: "n=1024 m=4096".to_string(),
            seed: 42,
            n: 1024,
            directed: true,
            chunks: 2,
            format: "compressed".to_string(),
            edges: 4096,
            shards: vec![
                ShardInfo {
                    pe: 0,
                    file: "shard-00000.kgc".to_string(),
                    edges: 2048,
                    checksum: 0xdeadbeef,
                },
                ShardInfo {
                    pe: 1,
                    file: "shard-00001.kgc".to_string(),
                    edges: 2048,
                    checksum: 0xfeedface,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let text = m.to_json();
        let back = Manifest::from_json(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn escapes_roundtrip() {
        let mut m = sample();
        m.params = "weird \"quoted\" \\ tab\there\nnewline".to_string();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.params, m.params);
    }

    #[test]
    fn empty_shard_list() {
        let mut m = sample();
        m.shards.clear();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert!(back.shards.is_empty());
    }

    #[test]
    fn missing_key_is_an_error() {
        let err = Manifest::from_json("{\"model\": \"x\"}").unwrap_err();
        assert!(err.contains("missing key"), "{err}");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Manifest::from_json("{").is_err());
        assert!(Manifest::from_json("[1, 2").is_err());
        assert!(Manifest::from_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("kagen_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
