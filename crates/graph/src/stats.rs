//! Degree statistics for model validation.

use crate::EdgeList;

/// Summary statistics of a degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u64,
    /// Maximum degree.
    pub max: u64,
    /// Mean degree.
    pub mean: f64,
    /// Degree variance.
    pub variance: f64,
}

impl DegreeStats {
    /// Compute from a degree sequence.
    pub fn from_degrees(degrees: &[u64]) -> Self {
        if degrees.is_empty() {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                variance: 0.0,
            };
        }
        let min = *degrees.iter().min().unwrap();
        let max = *degrees.iter().max().unwrap();
        let n = degrees.len() as f64;
        let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / n;
        let variance = degrees
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        DegreeStats {
            min,
            max,
            mean,
            variance,
        }
    }

    /// Compute for an undirected canonical edge list.
    pub fn undirected(el: &EdgeList) -> Self {
        Self::from_degrees(&el.degrees_undirected())
    }

    /// Compute for a directed edge list: separate in- and out-degree
    /// summaries (a directed graph has no single "degree" sequence).
    pub fn directed(el: &EdgeList) -> DirectedDegreeStats {
        DirectedDegreeStats {
            in_deg: Self::from_degrees(&el.in_degrees()),
            out_deg: Self::from_degrees(&el.out_degrees()),
        }
    }
}

/// In-/out-degree summaries of a directed edge list
/// (see [`DegreeStats::directed`]).
#[derive(Clone, Debug, PartialEq)]
pub struct DirectedDegreeStats {
    /// Statistics of the in-degree sequence.
    pub in_deg: DegreeStats,
    /// Statistics of the out-degree sequence.
    pub out_deg: DegreeStats,
}

/// Histogram of degrees: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(degrees: &[u64]) -> Vec<u64> {
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max + 1];
    for &d in degrees {
        hist[d as usize] += 1;
    }
    hist
}

/// Ratio of closed triplets: 3·triangles / open-and-closed triplets.
/// (Global clustering coefficient; validation on small graphs.)
pub fn global_clustering(el: &EdgeList) -> f64 {
    let csr = crate::Csr::undirected(el);
    let triangles = csr.count_triangles();
    let triplets: u64 = (0..csr.n())
        .map(|v| {
            let d = csr.degree(v as u64) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if triplets == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / triplets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    #[test]
    fn stats_of_star() {
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = DegreeStats::undirected(&el);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
    }

    #[test]
    fn histogram() {
        let h = degree_histogram(&[0, 1, 1, 3]);
        assert_eq!(h, vec![1, 2, 0, 1]);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert!((global_clustering(&el) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_path_is_zero() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        assert_eq!(global_clustering(&el), 0.0);
    }

    #[test]
    fn directed_stats_split_in_and_out() {
        // Star pointing outward: center has out-degree 4, leaves in-degree 1.
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = DegreeStats::directed(&el);
        assert_eq!(s.out_deg.max, 4);
        assert_eq!(s.out_deg.min, 0);
        assert_eq!(s.in_deg.max, 1);
        assert_eq!(s.in_deg.min, 0);
        assert!((s.in_deg.mean - 0.8).abs() < 1e-12);
        assert!((s.out_deg.mean - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_degrees() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }
}
