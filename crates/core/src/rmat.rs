//! R-MAT (recursive matrix) generator (§3.5.2) — the Graph 500 baseline the
//! paper compares against in §8.6.1.
//!
//! Each of the `m` edges is sampled independently by recursively descending
//! the adjacency matrix: at each of the log₂(n) levels one of the four
//! quadrants is chosen with probabilities (a, b, c, d). Because edges are
//! independent, distribution over PEs is trivial: PE `p` owns a contiguous
//! edge-index range and seeds a cheap PRNG per edge. The Θ(m log n) variate
//! cost is exactly the slowdown relative to the ER generators that Fig. 17
//! and 18 demonstrate.
//!
//! **Kernels.** Three descent kernels sample the identical distribution but
//! consume randomness differently (so each defines its own — equally
//! valid — instance per seed):
//!
//! * [`RmatKernel::Plain`] — one uniform variate per level, Θ(scale) per
//!   edge. Works at every scale; the reference semantics.
//! * [`RmatKernel::Table`] — the legacy multi-level descent table: one
//!   alias draw per `levels` recursion steps plus a remainder table, paths
//!   kept bit-interleaved until a final Morton deinterleave. Limited to
//!   `scale < 32` (2·scale interleaved bits must fit a u64).
//! * [`RmatKernel::Linear`] — the linear-work scheme of Hübschle-Schneider
//!   & Sanders ("Linear Work Generation of R-MAT Graphs"): one alias table
//!   over *path blocks*, sized to the L2 cache, whose entries store the u-
//!   and v-halves deinterleaved. A whole edge is the composition of
//!   ⌈scale/levels⌉ draws — the last draw truncated to the remaining
//!   levels, which is exact because the per-level quadrant choices are
//!   i.i.d. (the marginal of the first r levels of an L-level path *is*
//!   the r-level path distribution). No remainder table, no deinterleave,
//!   and no scale cap: u and v accumulate separately, so `scale ≥ 32` is
//!   degree-exact instead of falling back to plain descent.
//!
//! **Hot-path seeding.** Edge `e`'s PRNG is seeded in two steps: one hashed
//! seed per fixed-size *block* of `SEED_BLOCK_EDGES` consecutive edge
//! indices, then a single `mix2` for the edge's offset inside its block.
//! `edge(e)` recomputes the block seed every call (it is a pure function),
//! while [`Rmat::fill_edges`] derives it once per block — and, for the
//! linear kernel, runs the composed draws over a lane array so the alias
//! loads of independent edges overlap. Chunk invariance is unaffected: the
//! seed of edge `e` depends only on `(instance seed, e)`, never on the PE
//! boundaries.

use crate::{Generator, PeGraph};
use kagen_dist::AliasTable;
use kagen_obs::{Counter, Histogram};
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Rng64, SplitMix64};
use std::ops::Range;
use std::sync::Arc;

/// Edges descended through the legacy multi-level alias tables (counted
/// once per seed block, not per edge).
static RMAT_TABLE_EDGES: Counter = Counter::new("gen.rmat.table_edges");
/// Edges descended with the plain per-level loop.
static RMAT_PLAIN_EDGES: Counter = Counter::new("gen.rmat.plain_edges");
/// Edges descended with the linear-work composed-table kernel.
static RMAT_LINEAR_EDGES: Counter = Counter::new("gen.rmat.linear_edges");
/// Descent-table construction wall time — shows how build cost amortizes
/// against the per-edge savings in `--metrics-out` dumps.
static RMAT_TABLE_BUILD_US: Histogram = Histogram::new("rmat.table_build_us");

/// Edge indices per hashed seed block (the amortization granularity of
/// [`Rmat::fill_edges`]).
pub const SEED_BLOCK_EDGES: u64 = 4096;

/// Lanes of the batched composed-table fill: edges whose draws are issued
/// round-robin so the (L2-resident) alias loads of independent lanes
/// pipeline instead of serializing behind one PRNG chain.
const FILL_LANES: usize = 16;

/// Compact the even-position bits of `x` (bits 0, 2, 4, …) into the low
/// half — the Morton deinterleave step of the legacy table kernel.
#[inline(always)]
fn compact_even_bits(mut x: u64) -> u64 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// Descent kernel selection. All kernels sample the same edge
/// distribution; they differ in randomness consumption (distinct streams
/// per seed) and in cost per edge. See the module docs for the trade-offs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmatKernel {
    /// One uniform variate per recursion level.
    Plain,
    /// Legacy interleaved descent tables (`scale < 32` only).
    Table {
        /// Levels collapsed per draw, 1..=12 (clamped to `scale`).
        levels: u32,
    },
    /// Linear-work composed path-block table (any scale).
    Linear {
        /// Levels per path block, 1..=12 (clamped to `scale`).
        levels: u32,
    },
}

/// Legacy precomputed multi-level descent table: one alias draw selects
/// `levels` recursion steps at once (the §9 "faster R-MAT" extension).
///
/// An outcome is a *path*: `levels` quadrant choices of 2 bits each,
/// most-significant level first, so the u-bits sit at odd and the v-bits
/// at even positions of the path index. The sampler therefore needs no
/// per-outcome payload array — the bits deinterleave from the index in a
/// handful of ALU ops, keeping the table's memory traffic to the single
/// fused alias slot per draw.
#[derive(Clone, Debug)]
struct DescentTable {
    levels: u32,
    alias: AliasTable,
}

impl DescentTable {
    fn new(levels: u32, a: f64, b: f64, c: f64) -> Self {
        assert!((1..=12).contains(&levels));
        let d = 1.0 - a - b - c;
        let quadrant = [a, b, c, d]; // (u_bit, v_bit) = (0,0) (0,1) (1,0) (1,1)
        let k = 1usize << (2 * levels);
        let mut weights = Vec::with_capacity(k);
        for path in 0..k {
            let mut w = 1.0f64;
            for level in 0..levels {
                w *= quadrant[(path >> (2 * level)) & 3];
            }
            weights.push(w);
        }
        DescentTable {
            levels,
            alias: AliasTable::new(&weights),
        }
    }

    /// Draw one path: `levels` quadrant choices, u- and v-bits still
    /// interleaved (u at odd, v at even positions).
    #[inline(always)]
    fn sample_path<R: Rng64>(&self, rng: &mut R) -> u64 {
        self.alias.sample(rng) as u64
    }
}

/// Linear-work composed path-block table.
///
/// Outcome index layout: `idx = (hu << levels) | hv` — the u-half and the
/// v-half of a `levels`-level path, already deinterleaved. Bit
/// `levels − 1 − j` of each half is recursion level `j` (coarsest level in
/// the top bit), so *truncating a draw to its top `r` bits of each half*
/// yields exactly the first `r` levels of the path. Because levels are
/// i.i.d., that truncation is distribution-exact: the final draw of an
/// edge reuses the same table at full speed instead of a separate
/// remainder table.
#[derive(Clone, Debug)]
struct ComposedTable {
    /// Levels per path block (L).
    levels: u32,
    /// Full (untruncated) draws per edge: ⌈scale/L⌉ − 1.
    full_draws: u32,
    /// Levels taken from the final draw: scale − full_draws·L ∈ 1..=L.
    last_levels: u32,
    alias: AliasTable,
}

impl ComposedTable {
    fn new(levels: u32, scale: u32, a: f64, b: f64, c: f64) -> Self {
        assert!((1..=12).contains(&levels));
        assert!(scale >= 1);
        let d = 1.0 - a - b - c;
        let quadrant = [a, b, c, d]; // (u_bit, v_bit) = (0,0) (0,1) (1,0) (1,1)
        let l = levels as usize;
        let k = 1usize << (2 * l);
        let mut weights = Vec::with_capacity(k);
        for idx in 0..k {
            let (hu, hv) = (idx >> l, idx & ((1 << l) - 1));
            let mut w = 1.0f64;
            for bit in 0..l {
                w *= quadrant[(((hu >> bit) & 1) << 1) | ((hv >> bit) & 1)];
            }
            weights.push(w);
        }
        let draws = scale.div_ceil(levels);
        ComposedTable {
            levels,
            full_draws: draws - 1,
            last_levels: scale - (draws - 1) * levels,
            alias: AliasTable::new(&weights),
        }
    }

    /// Split a drawn outcome into its (u-half, v-half).
    #[inline(always)]
    fn halves(&self, idx: u64) -> (u64, u64) {
        (idx >> self.levels, idx & ((1u64 << self.levels) - 1))
    }
}

/// R-MAT generator with Graph 500 default parameters.
#[derive(Clone, Debug)]
pub struct Rmat {
    scale: u32,
    m: u64,
    a: f64,
    b: f64,
    c: f64,
    /// Precomputed prefix sums a+b and a+b+c of the quadrant
    /// probabilities — the two extra thresholds of the branchless descent.
    ab: f64,
    abc: f64,
    seed: u64,
    chunks: usize,
    kernel: KernelState,
}

/// Resolved kernel state (tables built).
#[derive(Clone, Debug)]
enum KernelState {
    Plain,
    Table(Arc<(DescentTable, Option<DescentTable>)>),
    Linear(Arc<ComposedTable>),
}

impl Rmat {
    /// `n = 2^scale` vertices, `m` edges, Graph 500 probabilities
    /// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
    pub fn new(scale: u32, m: u64) -> Self {
        Self::with_probabilities(scale, m, 0.57, 0.19, 0.19)
    }

    /// Custom quadrant probabilities; `d = 1 − a − b − c`.
    pub fn with_probabilities(scale: u32, m: u64, a: f64, b: f64, c: f64) -> Self {
        assert!((1..=63).contains(&scale));
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0 + 1e-12);
        Rmat {
            scale,
            m,
            a,
            b,
            c,
            ab: a + b,
            abc: a + b + c,
            seed: 1,
            chunks: 64,
            kernel: KernelState::Plain,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Select the descent kernel explicitly. `Table` panics at
    /// `scale ≥ 32` (its interleaved path bits overflow a u64 there — use
    /// `Linear`); `levels` outside 1..=12 panics; levels above `scale` are
    /// clamped to `scale`.
    pub fn with_kernel(mut self, kernel: RmatKernel) -> Self {
        self.kernel = match kernel {
            RmatKernel::Plain => KernelState::Plain,
            RmatKernel::Table { levels } => {
                assert!(
                    self.scale < 32,
                    "table kernel needs scale < 32 (2·scale interleaved bits per u64); \
                     use RmatKernel::Linear at scale {}",
                    self.scale
                );
                assert!((1..=12).contains(&levels), "table levels must be 1..=12");
                let levels = levels.min(self.scale);
                let span = kagen_obs::span("rmat.table_build");
                let main = DescentTable::new(levels, self.a, self.b, self.c);
                let rem = self.scale % levels;
                let remainder = (rem > 0).then(|| DescentTable::new(rem, self.a, self.b, self.c));
                RMAT_TABLE_BUILD_US.record((span.finish() * 1e6) as u64);
                KernelState::Table(Arc::new((main, remainder)))
            }
            RmatKernel::Linear { levels } => {
                assert!((1..=12).contains(&levels), "linear levels must be 1..=12");
                let levels = levels.min(self.scale);
                let span = kagen_obs::span("rmat.table_build");
                let table = ComposedTable::new(levels, self.scale, self.a, self.b, self.c);
                RMAT_TABLE_BUILD_US.record((span.finish() * 1e6) as u64);
                KernelState::Linear(Arc::new(table))
            }
        };
        self
    }

    /// Legacy kernel selector, kept for instance compatibility:
    /// `levels = 0` selects plain descent; otherwise `scale < 32` builds
    /// the legacy interleaved tables (bit-identical streams to every
    /// earlier release) and `scale ≥ 32` — where the request used to be
    /// *silently ignored* — now selects the linear-work kernel with the
    /// same level count.
    pub fn with_table_levels(self, levels: u32) -> Self {
        if levels == 0 {
            self.with_kernel(RmatKernel::Plain)
        } else if self.scale < 32 {
            let levels = levels.clamp(1, 12);
            self.with_kernel(RmatKernel::Table { levels })
        } else {
            let levels = levels.clamp(1, 12);
            self.with_kernel(RmatKernel::Linear { levels })
        }
    }

    /// The resolved kernel (after clamping), for display and accounting.
    pub fn kernel(&self) -> RmatKernel {
        match &self.kernel {
            KernelState::Plain => RmatKernel::Plain,
            KernelState::Table(t) => RmatKernel::Table { levels: t.0.levels },
            KernelState::Linear(t) => RmatKernel::Linear { levels: t.levels },
        }
    }

    /// Largest level count whose composed table (8·4^levels bytes of alias
    /// slots) fits a quarter of `l2_bytes` — the cache-sized default of
    /// the linear kernel. A quarter, not the whole cache: the table shares
    /// L2 with the edge output buffer and the streamed seed blocks, and a
    /// table that exactly fills the cache measurably thrashes (a 2 MiB
    /// table in a 2 MiB L2 ran ~25% slower than the 512 KiB table in the
    /// tuning sweep). Pure in its inputs: callers that auto-detect the
    /// cache must pin the resolved value into the instance parameters so
    /// the stream reproduces on differently-cached hosts.
    pub fn auto_linear_levels(scale: u32, l2_bytes: usize) -> u32 {
        let budget = l2_bytes / 4;
        let mut levels = 1u32;
        while levels < 12 && 8usize << (2 * (levels + 1)) <= budget {
            levels += 1;
        }
        levels.min(scale.max(1))
    }

    /// Total number of edges of the instance.
    pub fn num_edges(&self) -> u64 {
        self.m
    }

    /// log₂ of the vertex count.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Hashed seed of the block of edge indices containing edge `e`.
    #[inline]
    fn block_seed(&self, block: u64) -> u64 {
        derive_seed(self.seed, &[stream::RMAT, block])
    }

    /// Branchless per-level descent: the three threshold comparisons fold
    /// into the quadrant bits without data-dependent branches
    /// (`u_bit = [x ≥ a+b]`, `v_bit = [x ≥ a] ⊕ [x ≥ a+b] ⊕ [x ≥ a+b+c]`).
    #[inline(always)]
    fn descend_plain<R: Rng64>(&self, rng: &mut R) -> (u64, u64) {
        let mut u = 0u64;
        let mut v = 0u64;
        for _ in 0..self.scale {
            let x = rng.next_f64();
            let t0 = (x >= self.a) as u64;
            let t1 = (x >= self.ab) as u64;
            let t2 = (x >= self.abc) as u64;
            u = (u << 1) | t1;
            v = (v << 1) | (t0 ^ t1 ^ t2);
        }
        (u, v)
    }

    /// Legacy table descent: one alias draw per `levels` recursion steps,
    /// plus one remainder draw when `levels ∤ scale`. The drawn paths stay
    /// *interleaved* while they accumulate (one shift+or per draw) and
    /// deinterleave once per edge — `scale < 32` always holds when this
    /// kernel is enabled, so the 2·scale interleaved bits fit a u64.
    #[inline(always)]
    fn descend_tables<R: Rng64>(
        &self,
        tables: &(DescentTable, Option<DescentTable>),
        rng: &mut R,
    ) -> (u64, u64) {
        let (main, remainder) = tables;
        let mut z = 0u64;
        let mut remaining = self.scale;
        while remaining >= main.levels {
            z = (z << (2 * main.levels)) | main.sample_path(rng);
            remaining -= main.levels;
        }
        if remaining > 0 {
            let t = remainder.as_ref().expect("remainder table");
            debug_assert_eq!(t.levels, remaining);
            z = (z << (2 * t.levels)) | t.sample_path(rng);
        }
        (compact_even_bits(z >> 1), compact_even_bits(z))
    }

    /// Linear-work descent: `full_draws` whole path blocks composed by
    /// shift+or into the separately-accumulating u and v halves, then one
    /// final draw truncated to the remaining levels (top bits of each
    /// half — exact, see [`ComposedTable`]). ⌈scale/levels⌉ RNG words and
    /// alias loads per edge, no deinterleave, any scale up to 63.
    #[inline(always)]
    fn descend_linear<R: Rng64>(&self, t: &ComposedTable, rng: &mut R) -> (u64, u64) {
        let l = t.levels;
        let mut u = 0u64;
        let mut v = 0u64;
        for _ in 0..t.full_draws {
            let (hu, hv) = t.halves(t.alias.sample_word_pow2(rng.next_u64()) as u64);
            u = (u << l) | hu;
            v = (v << l) | hv;
        }
        let (hu, hv) = t.halves(t.alias.sample_word_pow2(rng.next_u64()) as u64);
        let shift = l - t.last_levels;
        u = (u << t.last_levels) | (hu >> shift);
        v = (v << t.last_levels) | (hv >> shift);
        (u, v)
    }

    /// Batched linear-work fill over one seed block: a lane array of
    /// [`FILL_LANES`] per-edge PRNGs advances draw-by-draw, so the alias
    /// slot loads of independent lanes issue back to back and overlap in
    /// the memory pipeline. Each lane's PRNG consumes exactly the words of
    /// [`Rmat::descend_linear`], so the output is bit-identical to the
    /// per-edge path; the sub-`FILL_LANES` tail falls back to it directly.
    fn fill_linear(
        &self,
        t: &ComposedTable,
        block_seed: u64,
        offsets: Range<u64>,
        out: &mut Vec<(u64, u64)>,
    ) {
        let l = t.levels;
        let shift = l - t.last_levels;
        let mut off = offsets.start;
        while off + FILL_LANES as u64 <= offsets.end {
            let mut rngs = [SplitMix64::at(block_seed, off); FILL_LANES];
            for (i, rng) in rngs.iter_mut().enumerate().skip(1) {
                *rng = SplitMix64::at(block_seed, off + i as u64);
            }
            let mut us = [0u64; FILL_LANES];
            let mut vs = [0u64; FILL_LANES];
            for _ in 0..t.full_draws {
                for i in 0..FILL_LANES {
                    let (hu, hv) = t.halves(t.alias.sample_word_pow2(rngs[i].next_u64()) as u64);
                    us[i] = (us[i] << l) | hu;
                    vs[i] = (vs[i] << l) | hv;
                }
            }
            for i in 0..FILL_LANES {
                let (hu, hv) = t.halves(t.alias.sample_word_pow2(rngs[i].next_u64()) as u64);
                us[i] = (us[i] << t.last_levels) | (hu >> shift);
                vs[i] = (vs[i] << t.last_levels) | (hv >> shift);
            }
            out.extend((0..FILL_LANES).map(|i| (us[i], vs[i])));
            off += FILL_LANES as u64;
        }
        out.extend((off..offsets.end).map(|o| {
            let mut rng = SplitMix64::at(block_seed, o);
            self.descend_linear(t, &mut rng)
        }));
    }

    /// Sample edge number `e` of the instance (pure function).
    #[inline]
    pub fn edge(&self, e: u64) -> (u64, u64) {
        let block_seed = self.block_seed(e / SEED_BLOCK_EDGES);
        let mut rng = SplitMix64::at(block_seed, e % SEED_BLOCK_EDGES);
        match &self.kernel {
            KernelState::Plain => self.descend_plain(&mut rng),
            KernelState::Table(tables) => self.descend_tables(tables.as_ref(), &mut rng),
            KernelState::Linear(t) => self.descend_linear(t.as_ref(), &mut rng),
        }
    }

    /// Append the edges of the index range `range` to `out` — identical to
    /// calling [`Rmat::edge`] per index, but the hashed block seed is
    /// derived once per `SEED_BLOCK_EDGES` indices, the descent-mode
    /// dispatch is hoisted out of the loop, and the linear kernel runs its
    /// lane-batched fill.
    pub fn fill_edges(&self, range: Range<u64>, out: &mut Vec<(u64, u64)>) {
        debug_assert!(range.end <= self.m);
        out.reserve((range.end - range.start) as usize);
        let mut e = range.start;
        while e < range.end {
            let block = e / SEED_BLOCK_EDGES;
            let hi = ((block + 1) * SEED_BLOCK_EDGES).min(range.end);
            let block_seed = self.block_seed(block);
            let offsets = (e % SEED_BLOCK_EDGES)..(e % SEED_BLOCK_EDGES + (hi - e));
            // `extend` over an exact-size iterator: one reservation, no
            // per-push capacity check inside the hot loop.
            match &self.kernel {
                KernelState::Plain => {
                    RMAT_PLAIN_EDGES.add(hi - e);
                    out.extend(offsets.map(|off| {
                        let mut rng = SplitMix64::at(block_seed, off);
                        self.descend_plain(&mut rng)
                    }));
                }
                KernelState::Table(tables) => {
                    RMAT_TABLE_EDGES.add(hi - e);
                    let tables = tables.as_ref();
                    out.extend(offsets.map(|off| {
                        let mut rng = SplitMix64::at(block_seed, off);
                        self.descend_tables(tables, &mut rng)
                    }));
                }
                KernelState::Linear(t) => {
                    RMAT_LINEAR_EDGES.add(hi - e);
                    self.fill_linear(t.as_ref(), block_seed, offsets, out);
                }
            }
            e = hi;
        }
    }

    /// Edge-index range `[lo, hi)` owned by PE `pe`.
    #[inline]
    pub fn pe_edge_range(&self, pe: usize) -> Range<u64> {
        let lo = self.m * pe as u64 / self.chunks as u64;
        let hi = self.m * (pe as u64 + 1) / self.chunks as u64;
        lo..hi
    }
}

impl Generator for Rmat {
    fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        true
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let mut out = PeGraph {
            pe,
            vertex_begin: 0,
            vertex_end: self.num_vertices(),
            ..PeGraph::default()
        };
        self.fill_edges(self.pe_edge_range(pe), &mut out.edges);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_directed;

    #[test]
    fn edge_count_and_range() {
        let gen = Rmat::new(10, 5000).with_seed(4).with_chunks(8);
        let el = generate_directed(&gen);
        assert_eq!(el.edges.len(), 5000);
        assert!(!el.has_out_of_range());
    }

    #[test]
    fn chunk_invariance() {
        let a = generate_directed(&Rmat::new(8, 2000).with_seed(9).with_chunks(1));
        let b = generate_directed(&Rmat::new(8, 2000).with_seed(9).with_chunks(7));
        assert_eq!(a, b);
    }

    #[test]
    fn skew_matches_parameters() {
        // With a = 0.57, vertex 0's quadrant is hit most: expect the top
        // half of rows to receive much more than half the edges.
        let gen = Rmat::new(12, 40_000).with_seed(2);
        let el = generate_directed(&gen);
        let half = 1u64 << 11;
        let top = el.edges.iter().filter(|&&(u, _)| u < half).count();
        let frac = top as f64 / el.edges.len() as f64;
        // P[top half] = a + b = 0.76 per level-0 split.
        assert!((frac - 0.76).abs() < 0.02, "top fraction {frac}");
    }

    #[test]
    fn degree_skew_power_law_ish() {
        let gen = Rmat::new(10, 30_000).with_seed(7);
        let el = generate_directed(&gen);
        let deg = el.out_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = 30_000.0 / 1024.0;
        assert!(
            max as f64 > 6.0 * mean,
            "R-MAT must be skewed: max {max}, mean {mean}"
        );
    }

    #[test]
    fn fill_edges_matches_edge_across_block_boundaries() {
        // A range straddling a seed-block boundary must produce exactly
        // the per-edge results (same block seed, same offsets) — for every
        // kernel, including the lane-batched linear fill.
        let m = SEED_BLOCK_EDGES * 2 + 100;
        let range = SEED_BLOCK_EDGES - 50..SEED_BLOCK_EDGES + 50;
        for gen in [
            Rmat::new(10, m).with_seed(5),
            Rmat::new(10, m).with_seed(5).with_table_levels(4),
            Rmat::new(10, m)
                .with_seed(5)
                .with_kernel(RmatKernel::Linear { levels: 4 }),
            Rmat::new(34, m)
                .with_seed(5)
                .with_kernel(RmatKernel::Linear { levels: 8 }),
        ] {
            let mut filled = Vec::new();
            gen.fill_edges(range.clone(), &mut filled);
            let expect: Vec<_> = range.clone().map(|e| gen.edge(e)).collect();
            assert_eq!(filled, expect);
        }
    }

    #[test]
    fn table_levels_zero_disables_tables() {
        let plain = Rmat::new(9, 500).with_seed(3);
        let toggled = Rmat::new(9, 500).with_seed(3).with_table_levels(8);
        let off = toggled.with_table_levels(0);
        assert_eq!(
            generate_directed(&plain).edges,
            generate_directed(&off).edges
        );
    }

    #[test]
    fn edge_is_pure_function() {
        let gen = Rmat::new(9, 10).with_seed(5);
        for e in 0..10 {
            assert_eq!(gen.edge(e), gen.edge(e));
        }
    }

    #[test]
    fn table_variant_same_distribution() {
        // Table- and composed-table-accelerated sampling draw from the
        // identical edge distribution: compare first-level quadrant masses.
        let m = 60_000u64;
        let plain = generate_directed(&Rmat::new(10, m).with_seed(6));
        let half = 1u64 << 9;
        let mass = |el: &kagen_graph::EdgeList| {
            let mut q = [0u64; 4];
            for &(u, v) in &el.edges {
                q[(((u >= half) as usize) << 1) | ((v >= half) as usize)] += 1;
            }
            q
        };
        let qa = mass(&plain);
        for fast in [
            generate_directed(&Rmat::new(10, m).with_seed(6).with_table_levels(5)),
            generate_directed(
                &Rmat::new(10, m)
                    .with_seed(6)
                    .with_kernel(RmatKernel::Linear { levels: 4 }),
            ),
        ] {
            assert_eq!(fast.edges.len() as u64, m);
            let qb = mass(&fast);
            for k in 0..4 {
                let (x, y) = (qa[k] as f64 / m as f64, qb[k] as f64 / m as f64);
                assert!((x - y).abs() < 0.01, "quadrant {k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn table_variant_chunk_invariant() {
        for levels in [5u32, 8] {
            let a = generate_directed(
                &Rmat::new(8, 2000)
                    .with_seed(9)
                    .with_table_levels(levels)
                    .with_chunks(1),
            );
            let b = generate_directed(
                &Rmat::new(8, 2000)
                    .with_seed(9)
                    .with_table_levels(levels)
                    .with_chunks(7),
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn table_levels_not_dividing_scale() {
        // scale = 10, levels = 4 → remainder table of 2 levels.
        let gen = Rmat::new(10, 100).with_seed(3).with_table_levels(4);
        let el = generate_directed(&gen);
        assert!(!el.has_out_of_range());
        assert_eq!(el.edges.len(), 100);
    }

    #[test]
    fn composed_truncation_is_first_levels_marginal() {
        // scale = 3, levels = 2 → two draws per edge, the second truncated
        // to 1 of its 2 levels. The finest level (lowest bit of u and v)
        // therefore comes from a truncated draw, and must still hit the
        // quadrants with exactly (a, b, c, d) — the i.i.d.-levels marginal
        // argument the remainder stage rests on.
        let m = 80_000u64;
        let gen = Rmat::new(3, m)
            .with_seed(12)
            .with_kernel(RmatKernel::Linear { levels: 2 });
        let el = generate_directed(&gen);
        let mut q = [0u64; 4];
        for &(u, v) in &el.edges {
            q[(((u & 1) as usize) << 1) | (v & 1) as usize] += 1;
        }
        for (k, &p) in [0.57, 0.19, 0.19, 0.05].iter().enumerate() {
            let x = q[k] as f64 / m as f64;
            assert!((x - p).abs() < 0.01, "quadrant {k}: {x} vs {p}");
        }
    }

    #[test]
    fn with_table_levels_at_large_scale_is_no_longer_a_noop() {
        // The silent fallback to plain descent at scale ≥ 32 is gone: the
        // request now resolves to the linear kernel.
        let gen = Rmat::new(32, 100).with_seed(3).with_table_levels(8);
        assert_eq!(gen.kernel(), RmatKernel::Linear { levels: 8 });
        let el = generate_directed(&gen);
        assert_eq!(el.edges.len(), 100);
        assert!(!el.has_out_of_range());
    }

    #[test]
    fn auto_levels_track_cache_size() {
        // Table budget is l2/4: 8·4^L bytes per table.
        assert_eq!(Rmat::auto_linear_levels(30, 2 * 1024 * 1024), 8);
        assert_eq!(Rmat::auto_linear_levels(30, 512 * 1024), 7);
        assert_eq!(Rmat::auto_linear_levels(30, 256 * 1024), 6);
        // Clamped to scale, and never below one level.
        assert_eq!(Rmat::auto_linear_levels(5, 2 * 1024 * 1024), 5);
        assert_eq!(Rmat::auto_linear_levels(30, 0), 1);
    }

    #[test]
    #[should_panic(expected = "scale < 32")]
    fn explicit_table_kernel_rejects_large_scale() {
        let _ = Rmat::new(32, 10).with_kernel(RmatKernel::Table { levels: 8 });
    }
}
