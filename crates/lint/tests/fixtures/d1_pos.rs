// Fixture: D1 must fire — HashMap/HashSet in an output-deterministic crate.
use std::collections::HashMap;

pub fn degree_histogram(edges: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut h = HashMap::new();
    for &(u, _) in edges {
        *h.entry(u).or_insert(0) += 1;
    }
    h
}
