//! # kagen-stats
//!
//! Statistical validation toolkit used by the test suite and the
//! experiment harness: goodness-of-fit tests for checking that generated
//! graphs match their models, a power-law exponent estimator for the RHG
//! degree distributions, and tiny descriptive-statistics helpers.

/// Mean and (population) variance of a sample.
pub fn mean_variance(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Pearson chi-square statistic for observed counts vs expected counts.
/// Buckets with expected < 5 are pooled into their successor.
pub fn chi_square(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len());
    let mut stat = 0.0;
    let mut pool_obs = 0.0;
    let mut pool_exp = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        pool_obs += o as f64;
        pool_exp += e;
        if pool_exp >= 5.0 {
            stat += (pool_obs - pool_exp) * (pool_obs - pool_exp) / pool_exp;
            pool_obs = 0.0;
            pool_exp = 0.0;
        }
    }
    if pool_exp > 0.0 {
        stat += (pool_obs - pool_exp) * (pool_obs - pool_exp) / pool_exp;
    }
    stat
}

/// Critical value of the chi-square distribution at significance 0.001,
/// via the Wilson–Hilferty approximation. Good to a few percent for
/// dof ≥ 3 — we only use it with generous margins.
pub fn chi_square_critical_001(dof: usize) -> f64 {
    let k = dof as f64;
    let z = 3.09; // z_{0.999}
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Two-sample Kolmogorov–Smirnov statistic (max CDF distance). Inputs are
/// sorted internally.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Acceptance threshold for a two-sample KS test at significance ~0.001:
/// `c(α)·sqrt((n+m)/(n·m))` with c(0.001) ≈ 1.95.
pub fn ks_critical_001(n: usize, m: usize) -> f64 {
    1.95 * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Maximum-likelihood estimate of a discrete power-law exponent
/// (Clauset–Shalizi–Newman approximation):
/// `α̂ = 1 + n / Σ ln(d_i / (d_min − 0.5))` over degrees ≥ d_min.
pub fn power_law_alpha(degrees: &[u64], d_min: u64) -> Option<f64> {
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= d_min)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 50 {
        return None; // not enough tail mass to estimate
    }
    let denom: f64 = tail.iter().map(|&d| (d / (d_min as f64 - 0.5)).ln()).sum();
    Some(1.0 + tail.len() as f64 / denom)
}

/// Least-squares slope of `ln(y)` against `ln(x)` — used to check scaling
/// exponents (e.g. near-constant weak-scaling curves have slope ≈ 0).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let (m, v) = mean_variance(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((v - 1.25).abs() < 1e-12);
        assert_eq!(mean_variance(&[]), (0.0, 0.0));
    }

    #[test]
    fn chi_square_perfect_fit_is_zero() {
        let obs = [10u64, 20, 30];
        let exp = [10.0, 20.0, 30.0];
        assert!(chi_square(&obs, &exp) < 1e-12);
    }

    #[test]
    fn chi_square_detects_misfit() {
        let obs = [100u64, 0, 0];
        let exp = [33.3, 33.3, 33.4];
        assert!(chi_square(&obs, &exp) > 100.0);
    }

    #[test]
    fn chi_square_pools_small_buckets() {
        // Tail buckets with tiny expectation must not explode the statistic.
        let obs = [50u64, 49, 1, 0, 0];
        let exp = [50.0, 48.0, 0.7, 0.2, 0.1];
        let stat = chi_square(&obs, &exp);
        assert!(stat < 10.0, "stat {stat}");
    }

    #[test]
    fn critical_values_reasonable() {
        // Known χ²_{0.999} values: dof=10 → 29.59, dof=50 → 86.66.
        assert!((chi_square_critical_001(10) - 29.6).abs() < 1.0);
        assert!((chi_square_critical_001(50) - 86.7).abs() < 2.0);
    }

    #[test]
    fn ks_identical_samples() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!(ks_statistic(&a, &a) <= 0.25 + 1e-12);
        let b = [10.0, 11.0, 12.0, 13.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_recovery() {
        // Sample from a discrete power law with α = 2.5 by inversion.
        use kagen_util::{Mt64, Rng64};
        let mut rng = Mt64::new(1);
        let alpha = 2.5f64;
        let degrees: Vec<u64> = (0..40_000)
            .map(|_| {
                let u = rng.next_f64_open();
                // Continuous power-law sample, rounded to a degree.
                (2.0 * (1.0 - u).powf(-1.0 / (alpha - 1.0))).round() as u64
            })
            .collect();
        // Estimate above the discretization-affected region.
        let est = power_law_alpha(&degrees, 4).unwrap();
        assert!((est - alpha).abs() < 0.25, "estimated {est}");
    }

    #[test]
    fn power_law_needs_tail() {
        assert!(power_law_alpha(&[1, 2, 3], 2).is_none());
    }

    #[test]
    fn loglog_slope_of_power() {
        // y = 3 x^2 → slope 2.
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| (i as f64, 3.0 * (i as f64).powi(2)))
            .collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }
}
