//! What "communication-free" buys you on a cluster.
//!
//! This example plays through the deployment story of the paper: the same
//! binary runs on every rank of a (simulated) cluster, each rank derives
//! **only its own part** of one well-defined graph instance from the
//! shared seed, and no messages are ever exchanged. We demonstrate:
//!
//! 1. per-rank generation is a pure function — re-running a rank
//!    reproduces its part bit-for-bit (fault tolerance: a crashed rank can
//!    be replayed anywhere);
//! 2. ranks can be executed in any order, on any number of physical
//!    threads, even on "different machines" (separate processes would
//!    behave identically) — the merged instance never changes;
//! 3. cross-rank overlap (an undirected edge between two ranks' vertices)
//!    is generated redundantly *and identically* by both owners;
//! 4. the real deal: `kagen_cluster::launch` supervises workers over a
//!    rank plan with a resumable shard ledger — a killed worker costs
//!    only its own shards, and the federated manifest is identical to a
//!    single-process run. (`kagen launch` does the same with OS
//!    processes instead of the in-process runner used here.)
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```

use kagen_repro::cluster::{launch, InProcessRunner, LaunchOptions, ValidateMode};
use kagen_repro::core::{generate_parallel, Generator, GnmUndirected, Rgg2d};
use kagen_repro::graph::merge_pe_edges;
use kagen_repro::pipeline::{InstanceMeta, ShardFormat};
use std::collections::HashSet;

fn main() {
    let ranks = 32; // pretend this is an MPI job with 32 ranks
    let n: u64 = 50_000;
    let m: u64 = 400_000;
    let gen = GnmUndirected::new(n, m).with_seed(1234).with_chunks(ranks);

    // --- 1. Per-rank purity -------------------------------------------
    let rank7_first = gen.generate_pe(7);
    let rank7_again = gen.generate_pe(7);
    assert_eq!(rank7_first.edges, rank7_again.edges);
    println!(
        "rank 7 owns vertices [{}, {}) and generated {} incident edges — replay is bit-identical",
        rank7_first.vertex_begin,
        rank7_first.vertex_end,
        rank7_first.edges.len()
    );

    // --- 2. Scheduling independence ------------------------------------
    let on_2_threads = generate_parallel(&gen, 2);
    let on_8_threads = generate_parallel(&gen, 8);
    for (a, b) in on_2_threads.iter().zip(&on_8_threads) {
        assert_eq!(a.edges, b.edges, "thread count must not matter");
    }
    let merged = merge_pe_edges(n, on_2_threads.into_iter().map(|p| p.edges));
    assert_eq!(merged.edges.len() as u64, m);
    println!("merged instance has exactly m = {m} edges on any schedule");

    // --- 3. Redundant overlap agreement ---------------------------------
    let parts = generate_parallel(&gen, 0);
    let mut cross = 0u64;
    // Ownership comes from the ranks' own id ranges (the closed formula
    // n·i/P rounds differently from v·P/n at range boundaries).
    let owner = |v: u64| {
        parts
            .iter()
            .position(|p| (p.vertex_begin..p.vertex_end).contains(&v))
            .expect("every vertex has an owner")
    };
    for part in &parts {
        for &(u, v) in &part.edges {
            let (ou, ov) = (owner(u), owner(v));
            if ou != ov {
                // The partner rank must hold the identical edge.
                let partner = if ou == part.pe { ov } else { ou };
                assert!(
                    parts[partner].edges.contains(&(u, v)),
                    "rank {partner} disagrees about edge ({u},{v})"
                );
                cross += 1;
            }
        }
    }
    println!(
        "verified {} cross-rank edge copies agree bit-for-bit",
        cross
    );

    // --- Spatial models work the same way ------------------------------
    let rgg = Rgg2d::new(20_000, Rgg2d::threshold_radius(20_000, 16))
        .with_seed(1234)
        .with_chunks(16);
    let spatial_parts = generate_parallel(&rgg, 0);
    let total_vertices: u64 = spatial_parts
        .iter()
        .map(|p| p.vertex_end - p.vertex_begin)
        .sum();
    assert_eq!(total_vertices, 20_000, "spatial vertex ids partition 0..n");
    println!(
        "RGG: {} ranks own disjoint id ranges covering all {} vertices; halo cells were \
         recomputed, not communicated",
        rgg.num_chunks(),
        total_vertices
    );

    // --- 4. The launcher: supervision, ledger, resume --------------------
    let dir = std::env::temp_dir().join("kagen_example_cluster");
    std::fs::remove_dir_all(&dir).ok();
    let meta = InstanceMeta {
        model: "gnm_undirected".into(),
        params: format!("n={n} m={m}"),
        seed: 1234,
    };
    let header = meta.header(&gen, ShardFormat::Compressed);

    // A worker is killed before writing PE 11 — the launch fails but
    // records every other rank's shards in the ledger.
    let mut runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
    runner.fail_pes = HashSet::from([11]);
    let opts = LaunchOptions {
        workers: 4,
        ..Default::default()
    };
    let err = launch(&dir, &header, &opts, &runner).expect_err("a rank was killed");
    println!("launch with a killed rank: {err}");

    // Resume regenerates only the missing shards and federates the
    // manifest — identical to what one process would have written.
    let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
    let report = launch(
        &dir,
        &header,
        &LaunchOptions {
            workers: 4,
            resume: true,
            validate: ValidateMode::Full,
            ..Default::default()
        },
        &runner,
    )
    .expect("resume completes the run");
    println!(
        "resume: regenerated {:?}, reused {} shards -> federated manifest, {} per-PE edges \
         (cross-rank copies included)",
        report.regenerated_pes, report.reused_shards, report.manifest.edges
    );
    assert_eq!(report.manifest.chunks, ranks as u64);
    std::fs::remove_dir_all(&dir).ok();
}
