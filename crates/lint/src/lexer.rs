//! A small Rust lexer sufficient for token-level lint rules.
//!
//! This is not a full grammar: it produces a flat token stream with line
//! numbers, and its only obligation is to *never* mistake the inside of a
//! comment, string, or char literal for code (and vice versa). That means
//! it handles, precisely:
//!
//! * line comments (`//`, `///`, `//!`) to end of line,
//! * block comments with arbitrary nesting (`/* /* */ */`),
//! * string literals with escapes (`"\"still a string\""`),
//! * raw strings with any hash count (`r"x"`, `r#"x"#`, `r##"…"##`),
//!   including byte/C-string prefixes (`b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`),
//! * char and byte literals (`'a'`, `'\''`, `'\u{1F600}'`, `b'x'`)
//!   disambiguated from lifetimes (`'a`, `'static`),
//! * raw identifiers (`r#type` lexes as the identifier `type`).
//!
//! Everything else is idents, integer/float literals, and single-char
//! punctuation; rules match multi-char operators (`::`, `+=`) as
//! consecutive punct tokens.

/// One lexed token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are unescaped: `r#fn` → `fn`).
    Ident(String),
    /// Integer literal, suffix included in the span but not recorded.
    Int,
    /// Float literal (has a fractional part or an exponent).
    Float,
    /// Any string literal form (plain, raw, byte, C).
    Str,
    /// Char or byte literal.
    Char,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// `// …` comment; text is everything after the slashes, untrimmed.
    LineComment(String),
    /// `/* … */` comment (nesting resolved); text body, untrimmed.
    BlockComment(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// Lex `src` into a flat token stream. Never panics; on malformed input
/// (unterminated string/comment) the remainder is consumed as that token.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Tok, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.plain_string();
                    self.push(Tok::Str, line);
                }
                '\'' => self.char_or_lifetime(line),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    let c = self.bump().unwrap();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // the two slashes
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Tok::BlockComment(text), line);
    }

    /// Consume a plain (escaped) string body; opening quote already eaten.
    fn plain_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consume a raw string body `r##"…"##`; caller consumed the prefix
    /// letters, `self.pos` is at the first `#` or the opening quote.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    seen += 1;
                    self.bump();
                }
                if seen == hashes {
                    break;
                }
            }
        }
    }

    /// `'a'` vs `'a` vs `'\n'` vs `'\u{…}'`.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then to closing quote.
                self.bump();
                self.bump(); // escape designator (n, ', u, x, …)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(c) if self.peek(1) == Some('\'') && c != '\'' => {
                // 'x' — a one-char literal.
                self.bump();
                self.bump();
                self.push(Tok::Char, line);
            }
            Some(c) if is_ident_start(c) => {
                // A lifetime: consume the identifier.
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(Tok::Lifetime, line);
            }
            _ => {
                // `'(`, `''`, stray quote — treat as punctuation.
                self.push(Tok::Punct('\''), line);
            }
        }
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut name = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            name.push(self.bump().unwrap());
        }
        let raw_capable = matches!(name.as_str(), "r" | "br" | "cr");
        let str_capable = raw_capable || matches!(name.as_str(), "b" | "c");
        match self.peek(0) {
            // r"…", br#"…"#, c"…", …
            Some('"') if str_capable => {
                if raw_capable {
                    self.raw_string();
                } else {
                    self.bump();
                    self.plain_string();
                }
                self.push(Tok::Str, line);
            }
            Some('#') if raw_capable => {
                // `r#"…"#` raw string vs `r#ident` raw identifier.
                let mut ahead = 1;
                while self.peek(ahead) == Some('#') {
                    ahead += 1;
                }
                if self.peek(ahead) == Some('"') {
                    self.raw_string();
                    self.push(Tok::Str, line);
                } else if name == "r" {
                    self.bump(); // the hash
                    let mut ident = String::new();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        ident.push(self.bump().unwrap());
                    }
                    self.push(Tok::Ident(ident), line);
                } else {
                    self.push(Tok::Ident(name), line);
                }
            }
            // b'x'
            Some('\'') if name == "b" => {
                self.char_or_lifetime(line);
                if let Some(last) = self.out.last_mut() {
                    if last.kind == Tok::Lifetime {
                        // `b'…` can only be a byte literal; normalize.
                        last.kind = Tok::Char;
                    }
                }
            }
            _ => self.push(Tok::Ident(name), line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut is_float = false;
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'));
        if radix_prefixed {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.push(Tok::Int, line);
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // Fractional part — but not `1..x` ranges or `1.method()` calls.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump();
                if sign {
                    self.bump();
                }
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`u64`, `f32`, …) rides along with the literal.
        if self.peek(0).is_some_and(is_ident_start) {
            let mut suffix = String::new();
            while self.peek(0).is_some_and(is_ident_continue) {
                suffix.push(self.bump().unwrap());
            }
            if suffix.starts_with('f') {
                is_float = true;
            }
        }
        self.push(if is_float { Tok::Float } else { Tok::Int }, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_hide_code() {
        assert_eq!(idents("// HashMap\nfoo"), vec!["foo"]);
        assert_eq!(idents("/* HashMap /* nested */ still */ bar"), vec!["bar"]);
        assert_eq!(idents("/// doc HashMap\nbaz"), vec!["baz"]);
    }

    #[test]
    fn strings_hide_code_and_comment_markers() {
        assert_eq!(
            idents(r#"let s = "HashMap // not a comment";"#),
            vec!["let", "s"]
        );
        assert_eq!(
            idents(r##"let s = r#"un"safe"# ; x"##),
            vec!["let", "s", "x"]
        );
        assert_eq!(
            idents("let s = \"esc \\\" HashMap\"; y"),
            vec!["let", "s", "y"]
        );
        assert_eq!(idents("b\"HashMap\" z"), vec!["z"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(kinds("'a'"), vec![Tok::Char]);
        assert_eq!(kinds("'a"), vec![Tok::Lifetime]);
        assert_eq!(kinds("'\\''"), vec![Tok::Char]);
        assert_eq!(kinds("'\\u{1F600}'"), vec![Tok::Char]);
        assert_eq!(
            kinds("&'static str"),
            vec![Tok::Punct('&'), Tok::Lifetime, Tok::Ident("str".into())]
        );
        assert_eq!(kinds("b'x'"), vec![Tok::Char]);
        // A char literal must not swallow a following comment.
        assert_eq!(
            kinds("'\"' // trailing"),
            vec![Tok::Char, Tok::LineComment(" trailing".into())]
        );
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert_eq!(idents("r#type r#fn plain"), vec!["type", "fn", "plain"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        assert_eq!(
            idents(r###"r##"quote " and "# inside"## after"###),
            vec!["after"]
        );
    }

    #[test]
    fn numbers_classify() {
        assert_eq!(kinds("1"), vec![Tok::Int]);
        assert_eq!(kinds("1.5"), vec![Tok::Float]);
        assert_eq!(kinds("1e9"), vec![Tok::Float]);
        assert_eq!(kinds("1f64"), vec![Tok::Float]);
        assert_eq!(kinds("0xFFu64"), vec![Tok::Int]);
        assert_eq!(
            kinds("0..5"),
            vec![Tok::Int, Tok::Punct('.'), Tok::Punct('.'), Tok::Int]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        assert_eq!(
            toks.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        lex("\"never closed");
        lex("/* never closed");
        lex("r#\"never closed");
        lex("'");
    }
}
