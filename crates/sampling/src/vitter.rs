//! Vitter's sequential random sampling: Algorithms A and D.
//!
//! Both draw `k` distinct indices uniformly from `[0, universe)` and emit
//! them in increasing order. Algorithm A scans with O(universe) work;
//! Algorithm D generates skip distances by acceptance–rejection with
//! expected O(k) work, which is what the paper's chunk-leaf sampling uses
//! ("a linear time sequential algorithm \[16\]", §2.2).

use kagen_util::{BlockRng, Rng64};

/// Threshold ratio: when `universe < ALPHA_INV * k`, Algorithm D hands the
/// remaining work to Algorithm A (Vitter's recommended α⁻¹ = 13).
const ALPHA_INV: u64 = 13;

/// Algorithm A: linear-scan sequential sampling.
///
/// Emits `k` sorted distinct indices in `[0, universe)`.
pub fn vitter_a<R: Rng64>(rng: &mut R, universe: u64, k: u64, emit: &mut impl FnMut(u64)) {
    debug_assert!(k <= universe);
    if k == 0 {
        return;
    }
    let mut remaining_n = k;
    let mut top = (universe - k) as f64;
    let mut n_real = universe as f64;
    let mut current: u64 = 0; // next candidate index
    while remaining_n >= 2 {
        let v = rng.next_f64();
        let mut s = 0u64;
        let mut quot = top / n_real;
        while quot > v {
            s += 1;
            top -= 1.0;
            n_real -= 1.0;
            quot = quot * top / n_real;
        }
        emit(current + s);
        current += s + 1;
        n_real -= 1.0;
        remaining_n -= 1;
    }
    // Last sample: uniform over what is left.
    let s = (n_real.round() * rng.next_f64()) as u64;
    emit(current + s);
}

/// Algorithm D: skip-distance sequential sampling, expected O(k).
///
/// Emits `k` sorted distinct indices in `[0, universe)`.
pub fn vitter_d<R: Rng64>(rng: &mut R, universe: u64, k: u64, emit: &mut impl FnMut(u64)) {
    debug_assert!(k <= universe, "k={k} > universe={universe}");
    if k == 0 {
        return;
    }
    let mut n = k;
    let mut big_n = universe;
    let mut n_real = n as f64;
    let mut big_n_real = big_n as f64;
    let mut ninv = 1.0 / n_real;
    let mut vprime = (rng.next_f64_open().ln() * ninv).exp();
    let mut qu1 = big_n - n + 1;
    let mut qu1_real = qu1 as f64;
    let mut threshold = ALPHA_INV * n;
    let mut current: u64 = 0;

    while n > 1 && threshold < big_n {
        let nmin1_inv = 1.0 / (n_real - 1.0);
        let s: u64;
        loop {
            // Draw a candidate skip S < qu1.
            let mut x: f64;
            let mut s_cand: u64;
            loop {
                x = big_n_real * (1.0 - vprime);
                s_cand = x as u64;
                if s_cand < qu1 {
                    break;
                }
                vprime = (rng.next_f64_open().ln() * ninv).exp();
            }
            let u = rng.next_f64_open();
            let neg_s_real = -(s_cand as f64);

            // Fast acceptance test.
            let y1 = ((u * big_n_real / qu1_real).ln() * nmin1_inv).exp();
            vprime = y1 * (-x / big_n_real + 1.0) * (qu1_real / (neg_s_real + qu1_real));
            if vprime <= 1.0 {
                s = s_cand;
                break;
            }

            // Slow exact test.
            let mut y2 = 1.0f64;
            let mut top = big_n_real - 1.0;
            let (mut bottom, limit) = if n - 1 > s_cand {
                (big_n_real - n_real, big_n - s_cand)
            } else {
                (big_n_real + neg_s_real - 1.0, qu1)
            };
            let mut t = big_n - 1;
            while t >= limit {
                y2 = y2 * top / bottom;
                top -= 1.0;
                bottom -= 1.0;
                t -= 1;
            }
            if big_n_real / (big_n_real - x) >= y1 * (y2.ln() * nmin1_inv).exp() {
                // Accept; prepare V' for the next iteration.
                vprime = (rng.next_f64_open().ln() * nmin1_inv).exp();
                s = s_cand;
                break;
            }
            vprime = (rng.next_f64_open().ln() * ninv).exp();
        }

        emit(current + s);
        current += s + 1;
        big_n -= s + 1;
        big_n_real = big_n_real + (-(s as f64)) - 1.0;
        n -= 1;
        n_real -= 1.0;
        ninv = nmin1_inv;
        qu1 -= s;
        qu1_real -= s as f64;
        threshold -= ALPHA_INV;
    }

    if n > 1 {
        // Dense remainder: finish with Algorithm A.
        let base = current;
        vitter_a(rng, big_n, n, &mut |i| emit(base + i));
    } else {
        let s = (big_n as f64 * vprime) as u64;
        emit(current + s.min(big_n - 1));
    }
}

/// Sample `k` sorted distinct indices from `[0, universe)`, choosing the
/// appropriate algorithm.
pub fn sample_sorted<R: Rng64>(rng: &mut R, universe: u64, k: u64, emit: &mut impl FnMut(u64)) {
    if k == universe {
        for i in 0..universe {
            emit(i);
        }
    } else if universe < ALPHA_INV * k {
        vitter_a(rng, universe, k, emit);
    } else {
        vitter_d(rng, universe, k, emit);
    }
}

/// Block-treated [`sample_sorted`]: the identical index stream, with the
/// uniform draws — Method D's `vprime` rejection uniforms included —
/// served from a [`BlockRng`] buffer instead of per-draw PRNG calls.
///
/// Because the buffered words are consumed in the per-draw order, the
/// output is bit-identical to [`sample_sorted`] on the same PRNG state
/// (asserted in tests). The buffer may draw up to a block past the last
/// consumed word, so the PRNG must be dedicated to this call — true of
/// the per-leaf-seeded PRNGs of every generator in this workspace.
///
/// Measured honestly: Method D's accept test is a serial
/// `ln → exp → ln → …` dependency chain across samples, so — unlike the
/// geometric skips, whose conversion is embarrassingly parallel — the
/// block treatment only removes the PRNG-call and dispatch overhead
/// around that chain, not the chain itself.
pub fn sample_sorted_batched<R: Rng64>(
    rng: &mut R,
    universe: u64,
    k: u64,
    emit: &mut impl FnMut(u64),
) {
    if k == universe {
        // Full enumeration draws nothing; skip the buffer entirely so no
        // words are consumed (bit-compatible with `sample_sorted`).
        for i in 0..universe {
            emit(i);
        }
        return;
    }
    let mut rng = BlockRng::new(rng);
    if universe < ALPHA_INV * k {
        vitter_a(&mut rng, universe, k, emit);
    } else {
        vitter_d(&mut rng, universe, k, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    fn collect(f: impl Fn(&mut Mt64, &mut dyn FnMut(u64)), seed: u64) -> Vec<u64> {
        let mut rng = Mt64::new(seed);
        let mut out = Vec::new();
        f(&mut rng, &mut |x| out.push(x));
        out
    }

    fn check_valid(sample: &[u64], universe: u64, k: u64) {
        assert_eq!(sample.len() as u64, k, "wrong sample size");
        for w in sample.windows(2) {
            assert!(w[0] < w[1], "not strictly sorted: {:?}", w);
        }
        for &x in sample {
            assert!(x < universe, "out of range: {x} >= {universe}");
        }
    }

    #[test]
    fn algorithm_a_valid() {
        for (u, k) in [(10u64, 10u64), (100, 5), (100, 99), (1, 1), (50, 1)] {
            for seed in 0..20 {
                let s = collect(|r, e| vitter_a(r, u, k, &mut |x| e(x)), seed);
                check_valid(&s, u, k);
            }
        }
    }

    #[test]
    fn algorithm_d_valid() {
        for (u, k) in [
            (1_000_000u64, 10u64),
            (1_000_000, 1000),
            (1 << 40, 100),
            (100, 7),
            (14, 1),
        ] {
            for seed in 0..20 {
                let s = collect(|r, e| vitter_d(r, u, k, &mut |x| e(x)), seed);
                check_valid(&s, u, k);
            }
        }
    }

    #[test]
    fn sample_sorted_full_universe() {
        let s = collect(|r, e| sample_sorted(r, 17, 17, &mut |x| e(x)), 1);
        assert_eq!(s, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn zero_samples() {
        let s = collect(|r, e| sample_sorted(r, 100, 0, &mut |x| e(x)), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn algorithm_a_uniform_inclusion() {
        // Every element of a small universe must be included with
        // probability k/u.
        let (u, k, reps) = (20u64, 5u64, 40_000usize);
        let mut counts = vec![0u32; u as usize];
        let mut rng = Mt64::new(42);
        for _ in 0..reps {
            vitter_a(&mut rng, u, k, &mut |x| counts[x as usize] += 1);
        }
        let expect = reps as f64 * k as f64 / u as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * (expect * (1.0 - 0.25)).sqrt(),
                "element {i}: count {c}, expect {expect}"
            );
        }
    }

    #[test]
    fn algorithm_d_uniform_inclusion() {
        let (u, k, reps) = (200u64, 8u64, 40_000usize);
        let mut counts = vec![0u32; u as usize];
        let mut rng = Mt64::new(43);
        for _ in 0..reps {
            vitter_d(&mut rng, u, k, &mut |x| counts[x as usize] += 1);
        }
        let expect = reps as f64 * k as f64 / u as f64;
        let sd = expect.sqrt();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "element {i}: count {c}, expect {expect}"
            );
        }
    }

    #[test]
    fn d_and_a_agree_statistically() {
        // Mean of the smallest sampled element should match between A and D.
        let (u, k, reps) = (10_000u64, 10u64, 5_000usize);
        let mut rng = Mt64::new(44);
        let mean_min_a: f64 = (0..reps)
            .map(|_| {
                let mut min = u64::MAX;
                vitter_a(&mut rng, u, k, &mut |x| min = min.min(x));
                min as f64
            })
            .sum::<f64>()
            / reps as f64;
        let mean_min_d: f64 = (0..reps)
            .map(|_| {
                let mut min = u64::MAX;
                vitter_d(&mut rng, u, k, &mut |x| min = min.min(x));
                min as f64
            })
            .sum::<f64>()
            / reps as f64;
        // E[min] = (u - k)/(k + 1) ≈ 908.
        let expect = (u - k) as f64 / (k + 1) as f64;
        assert!(
            (mean_min_a - expect).abs() / expect < 0.06,
            "A: {mean_min_a} vs {expect}"
        );
        assert!(
            (mean_min_d - expect).abs() / expect < 0.06,
            "D: {mean_min_d} vs {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = collect(|r, e| vitter_d(r, 1 << 30, 500, &mut |x| e(x)), 7);
        let b = collect(|r, e| vitter_d(r, 1 << 30, 500, &mut |x| e(x)), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn dense_sampling_falls_back() {
        // k close to universe forces the Algorithm A path inside D.
        let s = collect(|r, e| sample_sorted(r, 100, 60, &mut |x| e(x)), 3);
        check_valid(&s, 100, 60);
    }

    #[test]
    fn batched_equals_per_draw_exactly() {
        // sample_sorted_batched must reproduce sample_sorted bit-for-bit
        // from the same PRNG state: D path, dense A fallback, mid-stream
        // D→A handoff, full enumeration, k=0, universes near u64::MAX,
        // and counts straddling the RNG block boundary.
        for &(u, k) in &[
            (1u64 << 40, 1000u64),
            (1_000_000, 1000),
            (100, 60),   // A from the start
            (1000, 500), // D hands off to A mid-stream
            (17, 17),    // full enumeration
            (100, 0),
            (u64::MAX, 100),
            (u64::MAX - 1, 3),
            (1 << 30, 255),
            (1 << 30, 256),
            (1 << 30, 257), // block-boundary draw counts
            (1 << 30, 4096),
        ] {
            for seed in 0..5 {
                let a = collect(|r, e| sample_sorted(r, u, k, &mut |x| e(x)), seed);
                let b = collect(|r, e| sample_sorted_batched(r, u, k, &mut |x| e(x)), seed);
                assert_eq!(a, b, "u={u} k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn stress_many_sizes() {
        let mut rng = Mt64::new(11);
        for exp in [10u32, 16, 20] {
            let u = 1u64 << exp;
            for k in [1u64, 2, 63, 1024] {
                let mut cnt = 0u64;
                let mut last: Option<u64> = None;
                sample_sorted(&mut rng, u, k, &mut |x| {
                    if let Some(l) = last {
                        assert!(x > l);
                    }
                    assert!(x < u);
                    last = Some(x);
                    cnt += 1;
                });
                assert_eq!(cnt, k);
            }
        }
    }
}
