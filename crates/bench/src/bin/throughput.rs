//! `throughput` — the edges/second harness behind `BENCH_throughput.json`.
//!
//! Measures every hot generator twice on a single core:
//!
//! * **per-edge** — `stream_pe`, one virtual `emit` per edge; for R-MAT
//!   and BA this re-derives the hashed seed per edge, i.e. the seed
//!   repository's original hot path;
//! * **batched** — `stream_pe_batched`, slice delivery with per-block
//!   seed hashing and hoisted descent dispatch.
//!
//! ```text
//! throughput [--quick] [--reps N] [--out PATH]
//!
//!   --quick      tiny sizes (CI smoke: seconds, not minutes)
//!   --reps N     repetitions per measurement, best-of (default 3)
//!   --out PATH   JSON output (default BENCH_throughput.json)
//! ```
//!
//! The JSON is machine-readable so future PRs have a trajectory to beat;
//! the paper's headline metric (§8.6.1) is exactly this rate.

use kagen_core::prelude::*;
use kagen_core::streaming::BATCH_EDGES;
use kagen_pipeline::{BinarySink, EdgeSink};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Measurement {
    name: &'static str,
    model: &'static str,
    params: String,
    edges: u64,
    per_edge_secs: f64,
    batched_secs: f64,
    /// Writer-boundary timings: the instance streamed into a boxed
    /// `BinarySink` (the `kagen stream` shard path, minus the file) via
    /// per-edge `accept` vs `push_batch`.
    sink_per_edge_secs: f64,
    sink_batched_secs: f64,
}

impl Measurement {
    fn per_edge_eps(&self) -> f64 {
        self.edges as f64 / self.per_edge_secs
    }

    fn batched_eps(&self) -> f64 {
        self.edges as f64 / self.batched_secs
    }

    fn speedup(&self) -> f64 {
        self.per_edge_secs / self.batched_secs
    }
}

/// Best-of-`reps` wall time of one full instance streamed per edge.
fn time_per_edge<G: StreamingGenerator + ?Sized>(gen: &G, reps: u32) -> (u64, f64) {
    let mut edges = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut acc = 0u64;
        let mut count = 0u64;
        let start = Instant::now();
        for pe in 0..gen.num_chunks() {
            gen.stream_pe(pe, &mut |u, v| {
                acc ^= u.wrapping_add(v.rotate_left(17));
                count += 1;
            });
        }
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
        black_box(acc);
        edges = count;
    }
    (edges, best)
}

/// The sink the writer-boundary measurements stream into: the binary
/// shard encoder over a buffered null writer — the memcpy-into-buffer
/// traffic of a real file write, without disk noise or a platform-
/// specific device path.
fn null_binary_sink() -> Box<dyn EdgeSink> {
    Box::new(BinarySink::new(std::io::BufWriter::new(std::io::sink())))
}

/// Best-of-`reps` wall time streamed into a boxed binary sink, one
/// virtual `accept` plus one 16-byte encode per edge.
fn time_sink_per_edge<G: StreamingGenerator + ?Sized>(gen: &G, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sink = null_binary_sink();
        let start = Instant::now();
        for pe in 0..gen.num_chunks() {
            gen.stream_pe(pe, &mut |u, v| sink.accept(u, v));
        }
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
        black_box(sink.finish().unwrap());
    }
    best
}

/// Best-of-`reps` wall time streamed into the same boxed sink through
/// `push_batch`: one virtual call and one buffered write per batch.
fn time_sink_batched<G: StreamingGenerator + ?Sized>(gen: &G, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    let mut buf = Vec::with_capacity(BATCH_EDGES);
    for _ in 0..reps {
        let mut sink = null_binary_sink();
        let start = Instant::now();
        for pe in 0..gen.num_chunks() {
            gen.stream_pe_batched(pe, &mut buf, &mut |batch| sink.push_batch(batch));
        }
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
        black_box(sink.finish().unwrap());
    }
    best
}

/// Best-of-`reps` wall time of one full instance streamed in batches.
fn time_batched<G: StreamingGenerator + ?Sized>(gen: &G, reps: u32) -> (u64, f64) {
    let mut edges = 0u64;
    let mut best = f64::INFINITY;
    let mut buf = Vec::with_capacity(BATCH_EDGES);
    for _ in 0..reps {
        let mut acc = 0u64;
        let mut count = 0u64;
        let start = Instant::now();
        for pe in 0..gen.num_chunks() {
            gen.stream_pe_batched(pe, &mut buf, &mut |batch| {
                for &(u, v) in batch {
                    acc ^= u.wrapping_add(v.rotate_left(17));
                }
                count += batch.len() as u64;
            });
        }
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
        black_box(acc);
        edges = count;
    }
    (edges, best)
}

fn measure<G: StreamingGenerator + ?Sized>(
    name: &'static str,
    model: &'static str,
    params: String,
    gen: &G,
    reps: u32,
) -> Measurement {
    let (edges_a, per_edge_secs) = time_per_edge(gen, reps);
    let (edges_b, batched_secs) = time_batched(gen, reps);
    assert_eq!(edges_a, edges_b, "{name}: batched path lost edges");
    let sink_per_edge_secs = time_sink_per_edge(gen, reps);
    let sink_batched_secs = time_sink_batched(gen, reps);
    eprintln!(
        "{name:<16} {edges:>10} edges   per-edge {pe:>7.1} Meps   batched {ba:>7.1} Meps ({sp:.2}x)   sink {spe:>7.1} -> {sba:>7.1} Meps ({ssp:.2}x)",
        edges = edges_a,
        pe = edges_a as f64 / per_edge_secs / 1e6,
        ba = edges_a as f64 / batched_secs / 1e6,
        sp = per_edge_secs / batched_secs,
        spe = edges_a as f64 / sink_per_edge_secs / 1e6,
        sba = edges_a as f64 / sink_batched_secs / 1e6,
        ssp = sink_per_edge_secs / sink_batched_secs,
    );
    Measurement {
        name,
        model,
        params,
        edges: edges_a,
        per_edge_secs,
        batched_secs,
        sink_per_edge_secs,
        sink_batched_secs,
    }
}

fn main() {
    let mut quick = false;
    let mut reps = 3u32;
    let mut out = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                // Zero reps would leave every best-of time at infinity
                // and emit `inf`/`NaN` — not valid JSON.
                reps = match args.next().map(|v| v.parse()) {
                    Some(Ok(r)) if r >= 1 => r,
                    _ => {
                        eprintln!("throughput: --reps needs an integer >= 1");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("throughput: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    // Full mode: the ISSUE's reference point — scale 20, 2^22 edges.
    let (scale, m, n, ba_n) = if quick {
        (14u32, 1u64 << 16, 1u64 << 14, 1u64 << 13)
    } else {
        (20u32, 1u64 << 22, 1u64 << 20, 1u64 << 19)
    };
    let chunks = 64usize;
    let universe_d = (n as f64) * (n as f64 - 1.0);
    let p_directed = (m as f64 / universe_d).min(1.0);
    let p_undirected = (m as f64 / (universe_d / 2.0)).min(1.0);

    eprintln!(
        "throughput: {} mode, reps={reps}, chunks={chunks}, batch={BATCH_EDGES}",
        if quick { "quick" } else { "full" }
    );

    let mut results = Vec::new();
    results.push(measure(
        "rmat_plain",
        "rmat",
        format!("scale={scale} m={m} plain"),
        &Rmat::new(scale, m).with_seed(1).with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "rmat_table8",
        "rmat",
        format!("scale={scale} m={m} table_levels=8"),
        &Rmat::new(scale, m)
            .with_seed(1)
            .with_chunks(chunks)
            .with_table_levels(8),
        reps,
    ));
    results.push(measure(
        "gnm_directed",
        "gnm_directed",
        format!("n={n} m={m}"),
        &GnmDirected::new(n, m).with_seed(1).with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "gnm_undirected",
        "gnm_undirected",
        format!("n={n} m={m}"),
        &GnmUndirected::new(n, m).with_seed(1).with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "gnp_directed",
        "gnp_directed",
        format!("n={n} p={p_directed:.3e}"),
        &GnpDirected::new(n, p_directed)
            .with_seed(1)
            .with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "gnp_undirected",
        "gnp_undirected",
        format!("n={n} p={p_undirected:.3e}"),
        &GnpUndirected::new(n, p_undirected)
            .with_seed(1)
            .with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "ba_d8",
        "ba",
        format!("n={ba_n} d=8"),
        &BarabasiAlbert::new(ba_n, 8)
            .with_seed(1)
            .with_chunks(chunks),
        reps,
    ));

    // The acceptance ratio: fastest batched R-MAT path (table descent,
    // the CLI default) against the per-edge-seeded plain descent — the
    // seed repository's hot path.
    let plain = &results[0];
    let table = &results[1];
    let rmat_ratio = plain.per_edge_secs / table.batched_secs;
    eprintln!(
        "rmat batched(table) vs per-edge(plain): {rmat_ratio:.2}x (target >= 3x at scale 20)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"kagen-throughput/v1\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"repetitions\": {reps},");
    let _ = writeln!(json, "  \"chunks\": {chunks},");
    let _ = writeln!(json, "  \"batch_edges\": {BATCH_EDGES},");
    let _ = writeln!(
        json,
        "  \"rmat_table_batched_vs_plain_per_edge\": {rmat_ratio:.3},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"model\": \"{}\",", r.model);
        let _ = writeln!(json, "      \"params\": \"{}\",", r.params);
        let _ = writeln!(json, "      \"edges\": {},", r.edges);
        let _ = writeln!(json, "      \"per_edge_seconds\": {:.6},", r.per_edge_secs);
        let _ = writeln!(json, "      \"per_edge_eps\": {:.0},", r.per_edge_eps());
        let _ = writeln!(json, "      \"batched_seconds\": {:.6},", r.batched_secs);
        let _ = writeln!(json, "      \"batched_eps\": {:.0},", r.batched_eps());
        let _ = writeln!(json, "      \"speedup\": {:.3},", r.speedup());
        let _ = writeln!(
            json,
            "      \"sink_per_edge_eps\": {:.0},",
            r.edges as f64 / r.sink_per_edge_secs
        );
        let _ = writeln!(
            json,
            "      \"sink_batched_eps\": {:.0},",
            r.edges as f64 / r.sink_batched_secs
        );
        let _ = writeln!(
            json,
            "      \"sink_speedup\": {:.3}",
            r.sink_per_edge_secs / r.sink_batched_secs
        );
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out, &json).expect("cannot write JSON output");
    eprintln!("wrote {out}");
}
