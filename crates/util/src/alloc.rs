//! A counting global allocator for memory-profile measurements.
//!
//! Tracks live bytes and a resettable high-water mark, so a test binary
//! or benchmark can attribute peak allocation to one measured region —
//! the per-model stand-in for peak RSS (process RSS is a high-water
//! mark over the whole run and cannot be reset). Install it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: kagen_util::alloc::CountingAlloc = CountingAlloc;
//! ```
//!
//! The counters are process-global; callers measuring a region must
//! ensure no concurrent allocation-heavy work runs during it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Delegates to [`System`], counting live bytes and their high-water
/// mark.
#[derive(Debug)]
pub struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates to `System`; the counters are plain atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited from `GlobalAlloc::alloc` — `layout`
    // has nonzero size; forwarded to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` satisfies `System.alloc`'s contract because it
        // satisfies ours (same trait, forwarded verbatim).
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: contract inherited from `GlobalAlloc::dealloc` — `p` was
    // returned by this allocator with this `layout`.
    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        // SAFETY: `(p, layout)` came from our `alloc`/`realloc`, which
        // only ever hand out `System` blocks with the same layout.
        unsafe { System.dealloc(p, layout) };
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // Forward realloc to the system fast path (the trait's default
    // would degrade every Vec regrowth to alloc+copy+dealloc, skewing
    // timed measurements in binaries that install this allocator).
    //
    // SAFETY: contract inherited from `GlobalAlloc::realloc` — `p` was
    // allocated here with `layout`, and `new_size` is nonzero.
    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: `(p, layout)` is one of our live `System` blocks and
        // `new_size` is nonzero per the caller's contract above.
        let q = unsafe { System.realloc(p, layout, new_size) };
        if !q.is_null() {
            let live = if new_size >= layout.size() {
                LIVE_BYTES.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size()
            } else {
                LIVE_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed)
                    - (layout.size() - new_size)
            };
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        q
    }
}

impl CountingAlloc {
    /// Bytes currently allocated (when installed as the global
    /// allocator; always 0 otherwise).
    pub fn live() -> u64 {
        LIVE_BYTES.load(Ordering::Relaxed) as u64
    }

    /// High-water mark of live bytes since the last [`reset_peak`]
    /// (when installed as the global allocator; always 0 otherwise).
    ///
    /// [`reset_peak`]: CountingAlloc::reset_peak
    pub fn peak() -> u64 {
        PEAK_BYTES.load(Ordering::Relaxed) as u64
    }

    /// Reset the high-water mark to the current live size and return
    /// that baseline.
    pub fn reset_peak() -> usize {
        let live = LIVE_BYTES.load(Ordering::Relaxed);
        PEAK_BYTES.store(live, Ordering::Relaxed);
        live
    }

    /// Peak bytes allocated above `baseline` since the last reset.
    pub fn peak_above(baseline: usize) -> u64 {
        PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline) as u64
    }

    /// Peak bytes allocated while `f` runs, above the entry baseline.
    pub fn peak_during(f: impl FnOnce()) -> u64 {
        let baseline = Self::reset_peak();
        f();
        Self::peak_above(baseline)
    }
}
