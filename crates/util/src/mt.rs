//! MT19937-64 — the 64-bit Mersenne Twister of Matsumoto & Nishimura,
//! implemented from the reference constants.
//!
//! This is the PRNG the reference KaGen implementation seeds from SpookyHash
//! values. The period is 2^19937 − 1 and the output is 623-dimensionally
//! equidistributed; what matters for the paper's construction is only that
//! the stream is a pure function of the seed.

use crate::rng::Rng64;

const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
const UPPER_MASK: u64 = 0xFFFF_FFFF_8000_0000;
const LOWER_MASK: u64 = 0x0000_0000_7FFF_FFFF;

/// 64-bit Mersenne Twister state.
#[derive(Clone)]
pub struct Mt64 {
    mt: [u64; NN],
    idx: usize,
}

// Manual impl: the 312-word state array is noise; the cursor is the
// only field worth printing.
impl std::fmt::Debug for Mt64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt64")
            .field("idx", &self.idx)
            .finish_non_exhaustive()
    }
}

impl Mt64 {
    /// Seed with a single 64-bit value (reference `init_genrand64`).
    pub fn new(seed: u64) -> Self {
        let mut mt = [0u64; NN];
        mt[0] = seed;
        for i in 1..NN {
            mt[i] = 6_364_136_223_846_793_005u64
                .wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Mt64 { mt, idx: NN }
    }

    /// Seed with an array (reference `init_by_array64`).
    pub fn from_key(key: &[u64]) -> Self {
        let mut s = Self::new(19_650_218u64);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = NN.max(key.len());
        while k > 0 {
            s.mt[i] = (s.mt[i]
                ^ (s.mt[i - 1] ^ (s.mt[i - 1] >> 62)).wrapping_mul(3_935_559_000_370_003_845u64))
            .wrapping_add(key[j])
            .wrapping_add(j as u64);
            i += 1;
            j += 1;
            if i >= NN {
                s.mt[0] = s.mt[NN - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = NN - 1;
        while k > 0 {
            s.mt[i] = (s.mt[i]
                ^ (s.mt[i - 1] ^ (s.mt[i - 1] >> 62)).wrapping_mul(2_862_933_555_777_941_757u64))
            .wrapping_sub(i as u64);
            i += 1;
            if i >= NN {
                s.mt[0] = s.mt[NN - 1];
                i = 1;
            }
            k -= 1;
        }
        s.mt[0] = 1u64 << 63;
        s.idx = NN;
        s
    }

    #[cold]
    fn refill(&mut self) {
        let mt = &mut self.mt;
        for i in 0..NN {
            let x = (mt[i] & UPPER_MASK) | (mt[(i + 1) % NN] & LOWER_MASK);
            let mut xa = x >> 1;
            if x & 1 != 0 {
                xa ^= MATRIX_A;
            }
            mt[i] = mt[(i + MM) % NN] ^ xa;
        }
        self.idx = 0;
    }
}

impl Rng64 for Mt64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.idx >= NN {
            self.refill();
        }
        let mut x = self.mt[self.idx];
        self.idx += 1;
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn reference_vector() {
        // First outputs of the reference mt19937-64.c with
        // init_by_array64({0x12345, 0x23456, 0x34567, 0x45678}).
        let mut rng = Mt64::from_key(&[0x12345, 0x23456, 0x34567, 0x45678]);
        assert_eq!(rng.next_u64(), 7_266_447_313_870_364_031);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = Mt64::new(42).take_vec(16);
        let b: Vec<u64> = Mt64::new(42).take_vec(16);
        let c: Vec<u64> = Mt64::new(43).take_vec(16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn refill_boundary() {
        // Drawing beyond the 312-word buffer must be seamless.
        let mut rng = Mt64::new(1);
        let head: Vec<u64> = (0..1000).map(|_| rng.next_u64()).collect();
        let mut rng2 = Mt64::new(1);
        let again: Vec<u64> = (0..1000).map(|_| rng2.next_u64()).collect();
        assert_eq!(head, again);
    }

    #[test]
    fn uniform_f64_range() {
        let mut rng = Mt64::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bounded_draws_unbiased_small() {
        // Chi-square-ish sanity: next_below(10) is roughly uniform.
        let mut rng = Mt64::new(7);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "bucket count {c} vs expected {expected}"
            );
        }
    }
}
