//! # kagen-obs
//!
//! The observability layer of the workspace: run-wide metrics, span
//! tracing, and a leveled logger — vendored (zero dependencies), and
//! built around one hard rule: **telemetry must never change an output
//! byte**. Nothing in this crate touches an RNG stream, reorders an
//! edge, or adds a field to a manifest; with telemetry on or off, every
//! shard the generators write is bit-identical (enforced by the
//! determinism matrix in `tests/observability.rs`).
//!
//! * [`metrics`] — a registry of named [`Counter`]s (sharded atomics),
//!   [`Gauge`]s (value + high-water mark) and [`Histogram`]s (log2
//!   buckets). Metrics are **off by default**: a disabled update is one
//!   relaxed load and a predictable branch, and every instrumentation
//!   site in the workspace sits at batch/block granularity (once per
//!   4096-edge batch, per 128-skip block, per cell) — never per edge.
//! * [`trace`] — scoped span timers ([`span`]) that emit Chrome
//!   trace-event JSON loadable in `chrome://tracing` / Perfetto
//!   (`kagen ... --trace-out trace.json`). Spans double as the
//!   workspace's one wall-clock source: [`Span::finish`] returns the
//!   elapsed seconds, so bench timings and `metrics.json` come off the
//!   same clock.
//! * [`log`] — the leveled logger behind `-v`/`-q` and `KAGEN_LOG`,
//!   replacing ad-hoc `eprintln!`s with consistent
//!   `kagen <subcmd>:`-prefixed lines on stderr.
//!
//! ## Quickstart
//!
//! ```
//! use kagen_obs::{metrics, Counter};
//!
//! static EDGES: Counter = Counter::new("doc.edges");
//!
//! metrics::set_enabled(true);
//! EDGES.add(4096);
//! assert!(metrics::counters().iter().any(|(n, v)| *n == "doc.edges" && *v >= 4096));
//! ```

pub mod log;
pub mod metrics;
pub mod trace;

pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue};
pub use trace::{span, Span, TraceEvent};
