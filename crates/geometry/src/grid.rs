//! Power-of-two cell grids over the unit cube.

use crate::morton;

/// A uniform grid with `2^levels` cells per dimension over `[0,1)^d`.
///
/// Cells are addressed either by integer coordinates or by Morton code
/// (their rank in Z-order); chunks of the spatial generators are aligned
/// Morton ranges of cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellGrid<const D: usize> {
    levels: u32,
}

impl<const D: usize> CellGrid<D> {
    /// Grid with `2^levels` cells per dimension.
    pub fn new(levels: u32) -> Self {
        assert!(D == 2 || D == 3, "grids implemented for D in {{2,3}}");
        let max = if D == 2 { 31 } else { 20 };
        assert!(levels <= max, "levels {levels} exceeds Morton capacity");
        CellGrid { levels }
    }

    /// Refinement depth.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Cells per dimension.
    #[inline]
    pub fn cells_per_dim(&self) -> u64 {
        1u64 << self.levels
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> u64 {
        1u64 << (self.levels * D as u32)
    }

    /// Side length of a cell.
    #[inline]
    pub fn cell_side(&self) -> f64 {
        1.0 / self.cells_per_dim() as f64
    }

    /// Integer coordinates of the cell containing a point in `[0,1)^d`.
    #[inline]
    pub fn cell_of(&self, p: &[f64; D]) -> [u64; D] {
        let g = self.cells_per_dim();
        let mut c = [0u64; D];
        for i in 0..D {
            debug_assert!((0.0..1.0).contains(&p[i]), "point outside unit cube");
            c[i] = ((p[i] * g as f64) as u64).min(g - 1);
        }
        c
    }

    /// Morton rank of a cell.
    #[inline]
    pub fn morton_of(&self, coords: [u64; D]) -> u64 {
        morton::encode::<D>(coords)
    }

    /// Integer coordinates from a Morton rank.
    #[inline]
    pub fn coords_of(&self, code: u64) -> [u64; D] {
        morton::decode::<D>(code)
    }

    /// Axis-aligned bounds `[lo, hi)` of a cell.
    #[inline]
    pub fn cell_bounds(&self, coords: [u64; D]) -> ([f64; D], [f64; D]) {
        let side = self.cell_side();
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = coords[i] as f64 * side;
            hi[i] = lo[i] + side;
        }
        (lo, hi)
    }

    /// Visit the 3^d neighborhood of a cell (including itself).
    ///
    /// With `wrap = true` coordinates wrap around (torus; RDG model); with
    /// `wrap = false` out-of-cube neighbors are skipped (RGG model). The
    /// callback receives the neighbor's coordinates and, when wrapping, the
    /// integer offset vector that was applied (−1, 0 or 1 per axis) so
    /// callers can translate replica points.
    pub fn for_neighbors(
        &self,
        coords: [u64; D],
        wrap: bool,
        f: &mut impl FnMut([u64; D], [i8; D]),
    ) {
        let g = self.cells_per_dim() as i64;
        let mut deltas = [[-1i64, 0, 1]; D];
        let _ = &mut deltas;
        // Iterate the 3^D offsets via counting.
        let total = 3usize.pow(D as u32);
        for idx in 0..total {
            let mut rem = idx;
            let mut ncoords = [0u64; D];
            let mut offs = [0i8; D];
            let mut valid = true;
            for i in 0..D {
                let d = (rem % 3) as i64 - 1;
                rem /= 3;
                let raw = coords[i] as i64 + d;
                if wrap {
                    let (wrapped, off) = if raw < 0 {
                        (raw + g, -1i8)
                    } else if raw >= g {
                        (raw - g, 1i8)
                    } else {
                        (raw, 0i8)
                    };
                    ncoords[i] = wrapped as u64;
                    offs[i] = off;
                } else {
                    if raw < 0 || raw >= g {
                        valid = false;
                        break;
                    }
                    ncoords[i] = raw as u64;
                }
            }
            if valid {
                f(ncoords, offs);
            }
        }
    }
}

/// Pick the deepest grid whose cell side is at least `min_side`, capped at
/// `max_levels`. This realizes the paper's "cell side length
/// max(r, n^{-1/d})" rule: the grid refines only while cells stay larger
/// than the interaction radius.
pub fn levels_for_min_side(min_side: f64, max_levels: u32) -> u32 {
    let mut levels = 0u32;
    while levels < max_levels && 1.0 / (1u64 << (levels + 1)) as f64 >= min_side {
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_boundaries() {
        let g: CellGrid<2> = CellGrid::new(2); // 4x4
        assert_eq!(g.cell_of(&[0.0, 0.0]), [0, 0]);
        assert_eq!(g.cell_of(&[0.26, 0.74]), [1, 2]);
        assert_eq!(g.cell_of(&[0.999_999, 0.999_999]), [3, 3]);
    }

    #[test]
    fn bounds_cover_cell() {
        let g: CellGrid<3> = CellGrid::new(3);
        let (lo, hi) = g.cell_bounds([1, 2, 7]);
        assert_eq!(lo[0], 0.125);
        assert_eq!(hi[0], 0.25);
        assert_eq!(lo[2], 0.875);
        assert_eq!(hi[2], 1.0);
    }

    #[test]
    fn neighbor_count_interior() {
        let g: CellGrid<2> = CellGrid::new(3);
        let mut count = 0;
        g.for_neighbors([4, 4], false, &mut |_, _| count += 1);
        assert_eq!(count, 9);
        let g3: CellGrid<3> = CellGrid::new(3);
        let mut count3 = 0;
        g3.for_neighbors([4, 4, 4], false, &mut |_, _| count3 += 1);
        assert_eq!(count3, 27);
    }

    #[test]
    fn neighbor_count_corner_clamped() {
        let g: CellGrid<2> = CellGrid::new(3);
        let mut count = 0;
        g.for_neighbors([0, 0], false, &mut |_, _| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn neighbor_wrap_offsets() {
        let g: CellGrid<2> = CellGrid::new(2); // 4x4
        let mut seen = Vec::new();
        g.for_neighbors([0, 3], true, &mut |c, o| seen.push((c, o)));
        assert_eq!(seen.len(), 9, "torus always has 3^d neighbors");
        // The neighbor "left and up" wraps both axes.
        assert!(seen.contains(&([3, 0], [-1i8, 1i8])));
        // The identity offset is present.
        assert!(seen.contains(&([0, 3], [0i8, 0i8])));
    }

    #[test]
    fn levels_for_min_side_rule() {
        // side >= r: for r = 0.1 the deepest grid is 8 cells/dim (side 0.125).
        assert_eq!(levels_for_min_side(0.1, 30), 3);
        // r > 0.5: a single cell.
        assert_eq!(levels_for_min_side(0.6, 30), 0);
        // Cap respected.
        assert_eq!(levels_for_min_side(1e-12, 5), 5);
    }

    #[test]
    fn morton_roundtrip_via_grid() {
        let g: CellGrid<2> = CellGrid::new(4);
        for code in 0..g.num_cells() {
            assert_eq!(g.morton_of(g.coords_of(code)), code);
        }
    }
}
