//! Workspace walking and crate classification.
//!
//! What gets scanned: `crates/*/src/**/*.rs` plus the umbrella binary's
//! `src/**/*.rs`. What does not: `vendor/` (third-party API stand-ins),
//! `target/`, and test-shaped trees (`tests/`, `benches/`, `examples/`,
//! `fixtures/`) — in-file `#[cfg(test)]` code is masked separately by
//! the rules engine.

use crate::rules::{lint_source, RuleSet, Violation};
use std::path::{Path, PathBuf};

/// Crates whose iteration order can reach output bytes (rule D1).
const DETERMINISTIC_OUTPUT: [&str; 6] = [
    "core", "pipeline", "geometry", "dist", "sampling", "delaunay",
];

/// Crates allowed to read clocks/env/core counts (rule D2 allowlist):
/// observability, process supervision, and benchmarking — their reads
/// are proven byte-neutral by `tests/observability.rs`.
const CLOCK_ALLOWLISTED: [&str; 3] = ["obs", "cluster", "bench"];

/// File-level D2 allowlist additions (module granularity).
const CLOCK_ALLOWLISTED_FILES: [&str; 1] = ["crates/util/src/cache.rs"];

/// Crates that construct generator RNG streams (rule D3).
const GENERATOR: [&str; 7] = [
    "core",
    "sampling",
    "dist",
    "geometry",
    "delaunay",
    "gpgpu",
    "baselines",
];

/// Crates running parallel numeric work that feeds output (rule F1).
const PARALLEL_NUMERIC: [&str; 9] = [
    "core",
    "pipeline",
    "geometry",
    "dist",
    "sampling",
    "delaunay",
    "gpgpu",
    "runtime",
    "baselines",
];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 7] = [
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

/// Classify a workspace-relative path into the rule sets that apply.
/// Unknown layouts get S1-only (the always-on rule set).
pub fn classify(rel_path: &str) -> RuleSet {
    let rel = rel_path.replace('\\', "/");
    if CLOCK_ALLOWLISTED_FILES.iter().any(|f| rel.ends_with(f)) {
        return RuleSet {
            clock_allowlisted: true,
            ..RuleSet::default()
        };
    }
    let krate = if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else if rel.starts_with("src/") {
        // The umbrella CLI binary and library.
        "kagen"
    } else {
        ""
    };
    RuleSet {
        deterministic_output: DETERMINISTIC_OUTPUT.contains(&krate),
        clock_allowlisted: CLOCK_ALLOWLISTED.contains(&krate),
        generator: GENERATOR.contains(&krate),
        parallel_numeric: PARALLEL_NUMERIC.contains(&krate),
    }
}

/// One file's findings.
#[derive(Debug)]
pub struct FileReport {
    pub path: String,
    pub violations: Vec<Violation>,
}

/// Whole-workspace report.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub files: Vec<FileReport>,
}

impl Report {
    pub fn violation_count(&self) -> usize {
        self.files.iter().map(|f| f.violations.len()).sum()
    }
}

/// Lint every in-scope `.rs` file under `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let violations = lint_source(&src, classify(&rel));
        report.files_scanned += 1;
        if !violations.is_empty() {
            report.files.push(FileReport {
                path: rel,
                violations,
            });
        }
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let core = classify("crates/core/src/rmat.rs");
        assert!(core.deterministic_output && core.generator && !core.clock_allowlisted);

        let obs = classify("crates/obs/src/trace.rs");
        assert!(obs.clock_allowlisted && !obs.deterministic_output);

        let cache = classify("crates/util/src/cache.rs");
        assert!(cache.clock_allowlisted);
        let util = classify("crates/util/src/rng.rs");
        assert!(!util.clock_allowlisted);

        let cli = classify("src/bin/kagen.rs");
        assert!(!cli.clock_allowlisted && !cli.deterministic_output);

        let runtime = classify("crates/runtime/src/pe.rs");
        assert!(runtime.parallel_numeric && !runtime.deterministic_output);
    }
}
