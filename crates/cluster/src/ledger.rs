//! The run ledger: `ledger.json`, the durable record that makes a
//! multi-process run resumable.
//!
//! The ledger lives next to the shards and tracks two levels of state:
//!
//! * **per-shard** — the authoritative record: every PE is `pending` or
//!   `done`, and a done entry carries the generation-time
//!   [`ShardInfo`] (file, edge count, checksum) so resume can re-verify
//!   the bytes on disk against what the worker actually produced;
//! * **per-rank** — the latest spawn plan with each rank's status and
//!   attempt count, for observability and for reporting which ranks a
//!   `--resume` actually re-ran.
//!
//! The coordinator rewrites the ledger (atomically, via rename) after
//! every rank completion, so a killed coordinator loses at most the
//! in-flight ranks — their PEs simply remain `pending` and are
//! regenerated on resume. Serialization reuses the manifest's hand-rolled
//! JSON ([`kagen_pipeline::manifest::json`]).

use crate::plan::RankTask;
use kagen_pipeline::manifest::{json, push_str_value};
use kagen_pipeline::{RunHeader, ShardInfo};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// File name of the ledger inside a shard directory.
pub const LEDGER_FILE: &str = "ledger.json";

/// Per-shard state: generated (with its generation-time info) or not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Not yet generated (or invalidated by a failed validation).
    Pending,
    /// Generated; carries the worker-reported shard info.
    Done(ShardInfo),
}

/// Status of one rank of the current spawn plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankStatus {
    /// Not yet spawned, or spawned and not yet finished.
    Pending,
    /// Worker exited successfully and its partial manifest was merged.
    Done,
    /// Worker exited with an error; its PEs stay pending.
    Failed,
}

impl RankStatus {
    fn name(&self) -> &'static str {
        match self {
            RankStatus::Pending => "pending",
            RankStatus::Done => "done",
            RankStatus::Failed => "failed",
        }
    }

    fn parse(name: &str) -> Result<RankStatus, String> {
        match name {
            "pending" => Ok(RankStatus::Pending),
            "done" => Ok(RankStatus::Done),
            "failed" => Ok(RankStatus::Failed),
            other => Err(format!("ledger: unknown rank status '{other}'")),
        }
    }
}

/// One rank of the current spawn plan, with its outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankRecord {
    /// Rank id within the plan.
    pub rank: usize,
    /// First PE of the rank's range.
    pub pe_begin: usize,
    /// One past the last PE.
    pub pe_end: usize,
    /// Outcome of the most recent spawn.
    pub status: RankStatus,
    /// How many times this range has been spawned.
    pub attempts: u64,
}

/// The resumable run ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ledger {
    /// Run identity — must match the CLI parameters on resume.
    pub header: RunHeader,
    /// Worker count of the most recent launch.
    pub workers: usize,
    /// Per-PE shard state, indexed by PE.
    pub shards: Vec<ShardState>,
    /// The current spawn plan.
    pub ranks: Vec<RankRecord>,
}

impl Ledger {
    /// Fresh ledger: every shard pending, plan = `tasks`.
    pub fn new(header: RunHeader, workers: usize, tasks: &[RankTask]) -> Ledger {
        let shards = vec![ShardState::Pending; header.chunks as usize];
        let mut ledger = Ledger {
            header,
            workers,
            shards,
            ranks: Vec::new(),
        };
        ledger.set_plan(tasks);
        ledger
    }

    /// Install a new spawn plan (fresh launch or resume repairs),
    /// resetting the per-rank records. Shard states are untouched.
    pub fn set_plan(&mut self, tasks: &[RankTask]) {
        self.ranks = tasks
            .iter()
            .map(|t| RankRecord {
                rank: t.rank,
                pe_begin: t.pe_begin,
                pe_end: t.pe_end,
                status: RankStatus::Pending,
                attempts: 0,
            })
            .collect();
    }

    /// Record a successful rank: its shards become done, its record is
    /// marked done, attempts incremented.
    pub fn record_rank_done(&mut self, rank: usize, shards: Vec<ShardInfo>) {
        for info in shards {
            let pe = info.pe as usize;
            self.shards[pe] = ShardState::Done(info);
        }
        let r = &mut self.ranks[rank];
        r.status = RankStatus::Done;
        r.attempts += 1;
    }

    /// Record a failed rank; its PEs remain pending.
    pub fn record_rank_failed(&mut self, rank: usize) {
        let r = &mut self.ranks[rank];
        r.status = RankStatus::Failed;
        r.attempts += 1;
    }

    /// Record a failed attempt that the supervisor will retry in-launch:
    /// the attempt counts, but the rank goes back to pending instead of
    /// failed (so a coordinator killed mid-retry resumes it like any
    /// other unfinished rank).
    pub fn record_rank_retry(&mut self, rank: usize) {
        let r = &mut self.ranks[rank];
        r.status = RankStatus::Pending;
        r.attempts += 1;
    }

    /// Mark a shard pending again (failed resume-time validation).
    pub fn invalidate_shard(&mut self, pe: usize) {
        self.shards[pe] = ShardState::Pending;
    }

    /// PEs whose shards are not `done`, ascending.
    pub fn missing_pes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(pe, s)| matches!(s, ShardState::Pending).then_some(pe))
            .collect()
    }

    /// The shard infos of every done shard, in PE order.
    pub fn done_shards(&self) -> Vec<ShardInfo> {
        self.shards
            .iter()
            .filter_map(|s| match s {
                ShardState::Done(info) => Some(info.clone()),
                ShardState::Pending => None,
            })
            .collect()
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        self.header.push_json_fields(&mut s);
        let _ = writeln!(s, "  \"workers\": {},", self.workers);
        s.push_str("  \"shards\": [\n");
        for (i, sh) in self.shards.iter().enumerate() {
            let pe = i as u64;
            match sh {
                ShardState::Pending => {
                    let _ = write!(s, "    {{\"pe\": {pe}, \"status\": \"pending\"}}");
                }
                ShardState::Done(info) => {
                    let _ = write!(s, "    {{\"pe\": {pe}, \"status\": \"done\", \"file\": ");
                    push_str_value(&mut s, &info.file);
                    let _ = write!(
                        s,
                        ", \"edges\": {}, \"checksum\": {}}}",
                        info.edges, info.checksum
                    );
                }
            }
            s.push_str(if i + 1 < self.shards.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"ranks\": [\n");
        for (i, r) in self.ranks.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rank\": {}, \"pe_begin\": {}, \"pe_end\": {}, \
                 \"status\": \"{}\", \"attempts\": {}}}",
                r.rank,
                r.pe_begin,
                r.pe_end,
                r.status.name(),
                r.attempts
            );
            s.push_str(if i + 1 < self.ranks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse from JSON (inverse of [`Ledger::to_json`]).
    pub fn from_json(text: &str) -> Result<Ledger, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj("ledger")?;
        let header = RunHeader::from_json_obj(&obj)?;
        let workers = obj.get("workers")?.as_u64("workers")? as usize;

        let shard_values = obj.get("shards")?.as_arr("shards")?;
        if shard_values.len() as u64 != header.chunks {
            return Err(format!(
                "ledger: {} shard entries for {} chunks",
                shard_values.len(),
                header.chunks
            ));
        }
        let mut shards = Vec::with_capacity(shard_values.len());
        for (i, sv) in shard_values.iter().enumerate() {
            let so = sv.as_obj(&format!("shards[{i}]"))?;
            let pe = so.get("pe")?.as_u64("pe")?;
            if pe != i as u64 {
                return Err(format!("ledger: shard entry {i} has pe {pe}"));
            }
            let status = so.get("status")?.as_str("status")?;
            shards.push(match status {
                "pending" => ShardState::Pending,
                "done" => ShardState::Done(ShardInfo {
                    pe,
                    file: so.get("file")?.as_str("file")?.to_string(),
                    edges: so.get("edges")?.as_u64("edges")?,
                    checksum: so.get("checksum")?.as_u64("checksum")?,
                }),
                other => return Err(format!("ledger: unknown shard status '{other}'")),
            });
        }

        let mut ranks = Vec::new();
        for (i, rv) in obj.get("ranks")?.as_arr("ranks")?.iter().enumerate() {
            let ro = rv.as_obj(&format!("ranks[{i}]"))?;
            ranks.push(RankRecord {
                rank: ro.get("rank")?.as_u64("rank")? as usize,
                pe_begin: ro.get("pe_begin")?.as_u64("pe_begin")? as usize,
                pe_end: ro.get("pe_end")?.as_u64("pe_end")? as usize,
                status: RankStatus::parse(ro.get("status")?.as_str("status")?)?,
                attempts: ro.get("attempts")?.as_u64("attempts")?,
            });
        }

        Ok(Ledger {
            header,
            workers,
            shards,
            ranks,
        })
    }

    /// Write `ledger.json` into `dir` atomically (write a temp file,
    /// then rename over the old ledger) — a crash mid-save never leaves
    /// a truncated ledger behind.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join(format!("{LEDGER_FILE}.tmp"));
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, dir.join(LEDGER_FILE))
    }

    /// Load `ledger.json` from `dir`.
    pub fn load(dir: &Path) -> io::Result<Ledger> {
        let text = std::fs::read_to_string(dir.join(LEDGER_FILE))?;
        Ledger::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Whether a ledger exists in `dir`.
    pub fn exists(dir: &Path) -> bool {
        dir.join(LEDGER_FILE).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_ranks;

    fn header() -> RunHeader {
        RunHeader {
            model: "gnm_undirected".into(),
            params: "n=100 m=500".into(),
            seed: 7,
            n: 100,
            directed: false,
            chunks: 4,
            format: "compressed".into(),
        }
    }

    fn info(pe: u64) -> ShardInfo {
        ShardInfo {
            pe,
            file: format!("shard-{pe:05}.kgc"),
            edges: 10 * pe,
            checksum: 0x1234 + pe,
        }
    }

    #[test]
    fn fresh_ledger_has_all_pes_missing() {
        let ledger = Ledger::new(header(), 2, &plan_ranks(4, 2));
        assert_eq!(ledger.missing_pes(), vec![0, 1, 2, 3]);
        assert!(ledger.done_shards().is_empty());
        assert_eq!(ledger.ranks.len(), 2);
    }

    #[test]
    fn json_roundtrip_mixed_states() {
        let mut ledger = Ledger::new(header(), 2, &plan_ranks(4, 2));
        ledger.record_rank_done(0, vec![info(0), info(1)]);
        ledger.record_rank_failed(1);
        let back = Ledger::from_json(&ledger.to_json()).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(back.missing_pes(), vec![2, 3]);
        assert_eq!(back.done_shards(), vec![info(0), info(1)]);
        assert_eq!(back.ranks[1].status, RankStatus::Failed);
        assert_eq!(back.ranks[1].attempts, 1);
    }

    #[test]
    fn save_load_roundtrip_and_atomic_tmp_cleanup() {
        let dir = std::env::temp_dir().join("kagen_ledger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut ledger = Ledger::new(header(), 2, &plan_ranks(4, 2));
        ledger.record_rank_done(1, vec![info(2), info(3)]);
        ledger.save(&dir).unwrap();
        assert!(!dir.join("ledger.json.tmp").exists(), "tmp not renamed");
        let back = Ledger::load(&dir).unwrap();
        assert_eq!(back, ledger);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_count_mismatch_is_an_error() {
        let mut ledger = Ledger::new(header(), 2, &plan_ranks(4, 2));
        ledger.shards.pop();
        let err = Ledger::from_json(&ledger.to_json()).unwrap_err();
        assert!(err.contains("shard entries"), "{err}");
    }
}
