// Fixture: F1 must fire — a float reduction inside a par_* statement.
pub fn total_weight(weights: &[f64]) -> f64 {
    weights.par_iter().map(|w| w * 2.0).sum()
}
