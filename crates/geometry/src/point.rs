//! Fixed-dimension points in the unit cube `[0,1)^d`.

/// A point in `d`-dimensional space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Point<D> {
    /// Coordinate accessor.
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Squared Euclidean distance.
    #[inline]
    pub fn dist2(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared distance on the unit torus (wrap-around per axis). Used for
    /// the periodic boundary conditions of the RDG model (§2.1.4).
    #[inline]
    pub fn torus_dist2(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let mut d = (self.0[i] - other.0[i]).abs();
            if d > 0.5 {
                d = 1.0 - d;
            }
            acc += d * d;
        }
        acc
    }

    /// Translate by an integer offset vector (replica copies for periodic
    /// triangulations).
    #[inline]
    pub fn offset(&self, o: [i8; D]) -> Self {
        let mut c = self.0;
        for i in 0..D {
            c[i] += o[i] as f64;
        }
        Point(c)
    }
}

/// 2D shorthand.
pub type Point2 = Point<2>;
/// 3D shorthand.
pub type Point3 = Point<3>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance() {
        let a = Point([0.0, 0.0]);
        let b = Point([3.0, 4.0]);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn torus_wraps() {
        let a = Point([0.05, 0.5]);
        let b = Point([0.95, 0.5]);
        assert!((a.torus_dist2(&b).sqrt() - 0.1).abs() < 1e-12);
        // Plain distance would be 0.9.
        assert!((a.dist(&b) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn torus_symmetric() {
        let a = Point([0.1, 0.9, 0.2]);
        let b = Point([0.8, 0.1, 0.6]);
        assert_eq!(a.torus_dist2(&b), b.torus_dist2(&a));
    }

    #[test]
    fn offset_replicas() {
        let p = Point([0.25, 0.75]);
        let q = p.offset([-1, 1]);
        assert_eq!(q.0, [-0.75, 1.75]);
    }

    #[test]
    fn torus_never_exceeds_half_diagonal() {
        let a = Point([0.0, 0.0, 0.0]);
        let b = Point([0.5, 0.5, 0.5]);
        let d2 = a.torus_dist2(&b);
        assert!(d2 <= 0.75 + 1e-12);
    }
}
