//! Random geometric graphs in 2D and 3D (§5).
//!
//! `n` points uniform in `[0,1)^d`; vertices are adjacent iff their
//! Euclidean distance is at most `r`. The grid of cells with side
//! `max(r, n^{-1/d})` restricts candidate pairs to the 3^d neighborhood.
//!
//! Distribution: cells are ordered by Morton rank and grouped into
//! `2^(d·b)` chunks (aligned Morton ranges — i.e. sub-squares/cubes of
//! cells, assigned Z-order as in §5.1). A PE generates its own cells plus
//! the one-cell-deep *halo* around its chunk by recomputation; no
//! communication, and the recomputed points are bit-identical to their
//! owners' copies because the per-cell PRNG is seeded by the cell id.
//!
//! Vertex ids are global Morton-prefix sums over cell counts, derivable by
//! any PE in O(levels) per cell via the count tree.

use crate::{Generator, PeGraph};
use kagen_geometry::cell_points::cell_points;
use kagen_geometry::grid::levels_for_min_side;
use kagen_geometry::{CellGrid, CountTree, Point};
use std::collections::BTreeMap;

/// Shared implementation for both dimensions.
#[derive(Clone, Debug)]
pub struct Rgg<const D: usize> {
    n: u64,
    radius: f64,
    seed: u64,
    chunk_levels: u32,
}

/// 2D random geometric graph.
pub type Rgg2d = Rgg<2>;
/// 3D random geometric graph.
pub type Rgg3d = Rgg<3>;

impl<const D: usize> Rgg<D> {
    /// `n` points, connection radius `radius`.
    pub fn new(n: u64, radius: f64) -> Self {
        assert!(D == 2 || D == 3);
        assert!(n >= 1);
        assert!(radius > 0.0 && radius < 1.0, "radius must be in (0,1)");
        Rgg {
            n,
            radius,
            seed: 1,
            chunk_levels: 2, // 2^(2·2)=16 chunks in 2D, 64 in 3D
        }
    }

    /// The usual connectivity-threshold radius
    /// `0.55 · (ln n / n)^{1/d} / P^{1/d}` scaled for `pes` (§8.4).
    pub fn threshold_radius(n: u64, pes: u64) -> f64 {
        let nf = (n as f64).max(2.0);
        0.55 * (nf.ln() / nf).powf(1.0 / D as f64) / (pes as f64).powf(1.0 / D as f64)
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Request ~`chunks` logical PEs; rounded to the next power of `2^d`
    /// and capped so every chunk contains at least one cell.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        let mut b = 0u32;
        while (1usize << (D as u32 * (b + 1))) <= chunks {
            b += 1;
        }
        self.chunk_levels = b;
        self
    }

    /// The cell grid: side `max(r, n^{-1/d})`, snapped to powers of two,
    /// at least as deep as the chunk refinement.
    fn grid(&self) -> CellGrid<D> {
        let natural = (self.n as f64).powf(-1.0 / D as f64);
        let min_side = self.radius.max(natural);
        let max_levels: u32 = if D == 2 { 24 } else { 16 };
        let levels = levels_for_min_side(min_side, max_levels);
        CellGrid::new(levels.max(self.effective_chunk_levels(levels)))
    }

    /// Chunk refinement cannot exceed grid refinement (a chunk must be a
    /// whole number of cells).
    fn effective_chunk_levels(&self, grid_levels: u32) -> u32 {
        self.chunk_levels.min(grid_levels)
    }

    fn count_tree(&self) -> (CellGrid<D>, CountTree<D>, u32) {
        let grid = self.grid();
        let tree = CountTree::<D>::new(self.seed, self.n, grid.levels());
        let b = self.effective_chunk_levels(grid.levels());
        (grid, tree, b)
    }

    /// The instance's cell grid and per-cell count tree. Exposed so
    /// accelerator backends (see `kagen-gpgpu`) generate against the exact
    /// same decomposition — the §5.3 GPU pipeline computes "seeds and
    /// vertex numbers for the cells [...] on the CPU" and must agree with
    /// the CPU generator bit-for-bit.
    pub fn instance_grid(&self) -> (CellGrid<D>, CountTree<D>) {
        let (grid, tree, _) = self.count_tree();
        (grid, tree)
    }

    /// The instance seed (for per-cell point regeneration).
    pub fn instance_seed(&self) -> u64 {
        self.seed
    }

    /// Generate one cell (points + global id of its first vertex).
    fn cell_content(
        &self,
        grid: &CellGrid<D>,
        tree: &CountTree<D>,
        morton: u64,
    ) -> (u64, Vec<Point<D>>) {
        let count = tree.leaf_count(morton);
        let first_id = tree.prefix_before(morton);
        let mut pts = Vec::new();
        cell_points(grid, self.seed, morton, count, &mut pts);
        (first_id, pts)
    }
}

impl<const D: usize> Generator for Rgg<D> {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        let grid = self.grid();
        1usize << (D as u32 * self.effective_chunk_levels(grid.levels()))
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let (grid, tree, b) = self.count_tree();
        let cells_per_chunk_bits = D as u32 * (grid.levels() - b);
        let lo = (pe as u64) << cells_per_chunk_bits;
        let hi = (pe as u64 + 1) << cells_per_chunk_bits;

        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };

        // 1. Generate local cells with ids from a running Morton prefix.
        let mut local: BTreeMap<u64, (u64, Vec<Point<D>>)> = BTreeMap::new();
        let mut next_id = tree.prefix_before(lo);
        out.vertex_begin = next_id;
        {
            let mut counts: Vec<(u64, u64)> = Vec::new();
            tree.for_leaf_counts(lo, hi, &mut |cell, c| counts.push((cell, c)));
            for (cell, c) in counts {
                let mut pts = Vec::new();
                cell_points(&grid, self.seed, cell, c, &mut pts);
                local.insert(cell, (next_id, pts));
                next_id += c;
            }
        }
        out.vertex_end = next_id;

        // Record coordinates of local vertices.
        for (&_cell, (first, pts)) in &local {
            for (k, p) in pts.iter().enumerate() {
                let id = first + k as u64;
                match D {
                    2 => out.coords2.push((id, [p.0[0], p.0[1]])),
                    3 => out.coords3.push((id, [p.0[0], p.0[1], p.0[2]])),
                    _ => unreachable!(),
                }
            }
        }

        // 2. Halo cells: all out-of-chunk neighbors of local cells,
        //    recomputed deterministically.
        let mut halo: BTreeMap<u64, (u64, Vec<Point<D>>)> = BTreeMap::new();
        for &cell in local.keys() {
            let coords = grid.coords_of(cell);
            grid.for_neighbors(coords, false, &mut |ncoords, _| {
                let ncell = grid.morton_of(ncoords);
                if !(lo..hi).contains(&ncell) && !halo.contains_key(&ncell) {
                    halo.insert(ncell, self.cell_content(&grid, &tree, ncell));
                }
            });
        }

        // 3. Edges: compare each local cell with its 3^d neighborhood.
        let r2 = self.radius * self.radius;
        let emit =
            |a_id: u64, a: &Point<D>, b_id: u64, b: &Point<D>, edges: &mut Vec<(u64, u64)>| {
                if a.dist2(b) <= r2 {
                    edges.push((a_id, b_id));
                }
            };
        let mut edges = Vec::new();
        for (&cell, (first, pts)) in &local {
            let coords = grid.coords_of(cell);
            // Within-cell pairs.
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    emit(
                        first + i as u64,
                        &pts[i],
                        first + j as u64,
                        &pts[j],
                        &mut edges,
                    );
                }
            }
            grid.for_neighbors(coords, false, &mut |ncoords, _| {
                let ncell = grid.morton_of(ncoords);
                if ncell == cell {
                    return;
                }
                if let Some((nfirst, npts)) = local.get(&ncell) {
                    // Local–local: process each unordered cell pair once.
                    if ncell > cell {
                        for (i, p) in pts.iter().enumerate() {
                            for (j, q) in npts.iter().enumerate() {
                                emit(first + i as u64, p, nfirst + j as u64, q, &mut edges);
                            }
                        }
                    }
                } else if let Some((nfirst, npts)) = halo.get(&ncell) {
                    // Local–halo: always process (the neighbor PE emits its
                    // own copy; merge deduplicates).
                    for (i, p) in pts.iter().enumerate() {
                        for (j, q) in npts.iter().enumerate() {
                            emit(first + i as u64, p, nfirst + j as u64, q, &mut edges);
                        }
                    }
                }
            });
        }
        out.edges = edges;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_parallel, generate_undirected};

    /// Brute-force reference: all-pairs distance check over the actual
    /// point set (reconstructed from the generator's own coordinates).
    fn brute_force(parts: &[PeGraph], n: u64, r: f64) -> Vec<(u64, u64)> {
        let mut pts: Vec<(u64, Vec<f64>)> = Vec::new();
        for p in parts {
            for &(id, c) in &p.coords2 {
                pts.push((id, c.to_vec()));
            }
            for &(id, c) in &p.coords3 {
                pts.push((id, c.to_vec()));
            }
        }
        pts.sort_by_key(|x| x.0);
        pts.dedup_by_key(|x| x.0);
        assert_eq!(pts.len() as u64, n, "every vertex must have coordinates");
        let mut edges = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d2: f64 = pts[i]
                    .1
                    .iter()
                    .zip(&pts[j].1)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d2 <= r * r {
                    edges.push((pts[i].0, pts[j].0));
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    #[test]
    fn matches_brute_force_2d() {
        let gen = Rgg2d::new(400, 0.08).with_seed(3).with_chunks(16);
        let parts = generate_parallel(&gen, 0);
        let merged = generate_undirected(&gen);
        let reference = brute_force(&parts, 400, 0.08);
        assert_eq!(merged.edges, reference);
    }

    #[test]
    fn matches_brute_force_3d() {
        let gen = Rgg3d::new(300, 0.15).with_seed(5).with_chunks(8);
        let parts = generate_parallel(&gen, 0);
        let merged = generate_undirected(&gen);
        let reference = brute_force(&parts, 300, 0.15);
        assert_eq!(merged.edges, reference);
    }

    #[test]
    fn chunk_invariance() {
        // The instance (vertex ids AND edges) is identical for any chunking.
        let a = generate_undirected(&Rgg2d::new(500, 0.05).with_seed(7).with_chunks(1));
        let b = generate_undirected(&Rgg2d::new(500, 0.05).with_seed(7).with_chunks(16));
        let c = generate_undirected(&Rgg2d::new(500, 0.05).with_seed(7).with_chunks(64));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn vertex_ids_partition_range() {
        let gen = Rgg2d::new(1000, 0.03).with_seed(1).with_chunks(16);
        let parts = generate_parallel(&gen, 0);
        let mut ranges: Vec<(u64, u64)> = parts
            .iter()
            .map(|p| (p.vertex_begin, p.vertex_end))
            .collect();
        ranges.sort_unstable();
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, 1000);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gaps/overlap in id ranges");
        }
    }

    #[test]
    fn expected_edge_count_2d() {
        // E[m] ≈ n²·π·r²/2 (interior approximation; generous tolerance for
        // the boundary deficit).
        let n = 4000u64;
        let r = 0.02;
        let el = generate_undirected(&Rgg2d::new(n, r).with_seed(11));
        let expect = (n as f64) * (n as f64) * std::f64::consts::PI * r * r / 2.0;
        let got = el.edges.len() as f64;
        assert!(
            got > 0.75 * expect && got < 1.1 * expect,
            "edges {got} vs expected {expect}"
        );
    }

    #[test]
    fn halo_recomputation_bit_identical() {
        // A vertex emitted with coordinates by its owner must induce the
        // same cross edges on the neighboring PE.
        let gen = Rgg2d::new(600, 0.09).with_seed(13).with_chunks(16);
        let parts = generate_parallel(&gen, 0);
        // Each cross edge (u local to A, v local to B) must appear in both
        // A's and B's output.
        use std::collections::HashSet;
        let owner = |id: u64| {
            parts
                .iter()
                .position(|p| (p.vertex_begin..p.vertex_end).contains(&id))
                .unwrap()
        };
        let sets: Vec<HashSet<(u64, u64)>> = parts
            .iter()
            .map(|p| p.edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect())
            .collect();
        for (pe, set) in sets.iter().enumerate() {
            for &(u, v) in set {
                let (ou, ov) = (owner(u), owner(v));
                if ou != ov {
                    let other = if ou == pe { ov } else { ou };
                    assert!(
                        sets[other].contains(&(u, v)),
                        "cross edge ({u},{v}) missing from PE {other}"
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_regime() {
        // Tiny radius: few or no edges, but everything still consistent.
        let el = generate_undirected(&Rgg2d::new(100, 0.001).with_seed(2));
        assert!(el.edges.len() < 5);
        assert!(!el.has_out_of_range());
    }

    #[test]
    fn large_radius_regime() {
        // Radius close to the cube diagonal: nearly complete graph.
        let n = 60u64;
        let el = generate_undirected(&Rgg2d::new(n, 0.9).with_seed(4));
        let complete = n * (n - 1) / 2;
        assert!(
            el.edges.len() as u64 > complete * 8 / 10,
            "{} of {complete}",
            el.edges.len()
        );
    }
}
