//! Writers for common on-disk graph formats.

use crate::EdgeList;
use std::io::{self, BufWriter, Write};

/// Write one `u v` pair per line (the format the KaGen tool emits).
pub fn write_edge_list<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Write METIS format: header `n m`, then one line of 1-based neighbors per
/// vertex. Expects a canonical undirected edge list.
pub fn write_metis<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let csr = crate::Csr::undirected(el);
    writeln!(w, "{} {}", el.n, el.edges.len())?;
    for v in 0..el.n {
        let neigh = csr.neighbors(v);
        let mut first = true;
        for &u in neigh {
            if first {
                write!(w, "{}", u + 1)?;
                first = false;
            } else {
                write!(w, " {}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Write raw little-endian `u64` pairs (binary edge list).
pub fn write_binary<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for &(u, v) in &el.edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read raw little-endian `u64` pairs back (inverse of [`write_binary`]).
pub fn read_binary(bytes: &[u8], n: u64) -> EdgeList {
    assert_eq!(bytes.len() % 16, 0, "truncated binary edge list");
    let mut edges = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let u = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let v = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
        edges.push((u, v));
    }
    EdgeList::new(n, edges)
}

/// Parse a text edge list (`u v` per line; `#`/`%` comment lines skipped).
/// `n` is inferred as max id + 1 unless given.
pub fn read_edge_list(text: &str, n: Option<u64>) -> Result<EdgeList, String> {
    let mut edges = Vec::new();
    let mut max_id = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, String> {
            tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                .parse::<u64>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = n.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(EdgeList::new(n, edges))
}

/// Write Graphviz DOT (undirected), for visualizing small instances.
pub fn write_dot<W: Write>(w: W, el: &EdgeList, name: &str) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "graph {name} {{")?;
    for &(u, v) in &el.edges {
        writeln!(w, "  {u} -- {v};")?;
    }
    writeln!(w, "}}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_list_format() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0 1\n1 2\n2 3\n");
    }

    #[test]
    fn metis_format() {
        let mut buf = Vec::new();
        write_metis(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "4 3");
        assert_eq!(lines[1], "2");
        assert_eq!(lines[2], "1 3");
        assert_eq!(lines[3], "2 4");
        assert_eq!(lines[4], "3");
    }

    #[test]
    fn binary_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &el).unwrap();
        assert_eq!(buf.len(), 3 * 16);
        let back = read_binary(&buf, 4);
        assert_eq!(back, el);
    }

    #[test]
    fn text_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &el).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = read_edge_list(&text, None).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn read_skips_comments_and_infers_n() {
        let el = read_edge_list("# header\n0 1\n% meta\n5 2\n", None).unwrap();
        assert_eq!(el.n, 6);
        assert_eq!(el.edges, vec![(0, 1), (5, 2)]);
    }

    #[test]
    fn read_reports_errors() {
        assert!(read_edge_list("0\n", None).is_err());
        assert!(read_edge_list("a b\n", None).is_err());
        assert_eq!(read_edge_list("", None).unwrap().n, 0);
    }

    #[test]
    fn dot_output() {
        let mut buf = Vec::new();
        write_dot(&mut buf, &sample(), "g").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph g {"));
        assert!(text.contains("  1 -- 2;"));
        assert!(text.trim_end().ends_with('}'));
    }
}
