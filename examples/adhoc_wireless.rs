//! Ad-hoc wireless network simulation — the motivating RGG use case
//! (Muthukrishnan & Pandurangan [1]; §1 of the paper).
//!
//! Sensor nodes are dropped uniformly over a square region and can talk to
//! every node within transmission radius r. The classic result of Appel &
//! Russo [45] says connectivity appears sharply around
//! r* = sqrt(ln n / n) · const. We sweep the radius around the threshold
//! used in the paper's experiments (0.55·sqrt(ln n / n)) and measure how
//! the largest connected component and the isolated-node count behave.
//!
//! ```text
//! cargo run --release --example adhoc_wireless
//! ```

use kagen_repro::core::{generate_undirected, Generator, Rgg2d};
use kagen_repro::graph::components::connected_components;

fn main() {
    let n: u64 = 20_000;
    let base = (n as f64).ln() / n as f64;

    println!("ad-hoc network over {n} sensors; threshold sweep\n");
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>10}",
        "c", "radius", "mean degree", "largest comp %", "isolated"
    );

    for &c in &[0.30, 0.40, 0.50, 0.55, 0.60, 0.70, 0.85] {
        let r = c * base.sqrt();
        let gen = Rgg2d::new(n, r).with_seed(7).with_chunks(16);
        let el = generate_undirected(&gen);
        let degrees = el.degrees_undirected();
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let mean = degrees.iter().sum::<u64>() as f64 / n as f64;
        let mut uf = connected_components(&el);
        let giant = 100.0 * uf.largest_component() as f64 / n as f64;
        println!(
            "{:<8.2} {:>10.5} {:>12.2} {:>13.1}% {:>10}",
            c, r, mean, giant, isolated
        );
        let _ = gen.num_chunks();
    }

    println!(
        "\nexpected shape: below c≈0.55 the network fragments (isolated \
         sensors persist); above it one giant component swallows ~100% — \
         the paper's choice r = 0.55·sqrt(ln n / n) sits just above the \
         connectivity threshold."
    );
}
