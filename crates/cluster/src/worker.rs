//! The worker side of a multi-process run: generate a contiguous PE
//! range into shard files and record the slice as a partial manifest.
//!
//! This is the code path behind `kagen worker` — but it is a plain
//! library function, so the in-process runner (tests, examples, single
//! machine runs without process overhead) executes *exactly* the same
//! logic. A worker never reads the ledger and never talks to its
//! siblings: its output is a pure function of `(generator, pe range,
//! format)`, which is the whole point of the paper.

use kagen_core::streaming::StreamingGenerator;
use kagen_obs::Counter;
use kagen_pipeline::{write_shard, PartialManifest, ShardFormat, ShardInfo};
use std::io;
use std::ops::Range;
use std::path::Path;

/// Shards this worker finished writing — the heartbeat publisher's
/// "PEs done" signal.
static WORKER_PES_DONE: Counter = Counter::new("worker.pes_done");

/// Failure-injection hook for supervision tests: abort before writing
/// shard `pe`, leaving earlier shards of the range behind — the
/// footprint of a worker killed mid-run.
#[derive(Clone, Debug, Default)]
pub struct FailureInjection {
    /// Abort (with an error) immediately before generating this PE.
    pub fail_before_pe: Option<usize>,
    /// Transient-fault mode for retry tests: if this marker file does
    /// not exist, create it and fail the worker at entry; once the
    /// marker exists every later attempt proceeds normally — a fault
    /// that heals on retry.
    pub fail_once_marker: Option<std::path::PathBuf>,
    /// Wedge mode for stall-detection tests: if this marker file does
    /// not exist, create it and sleep forever at entry — a hung worker
    /// that only a heartbeat watchdog can catch; once the marker
    /// exists every later attempt proceeds normally.
    pub stall_once_marker: Option<std::path::PathBuf>,
}

impl FailureInjection {
    /// Read the injection from the environment (`KAGEN_WORKER_FAIL_PE`,
    /// `KAGEN_WORKER_FAIL_ONCE=<marker path>`,
    /// `KAGEN_WORKER_STALL_ONCE=<marker path>`) — how the
    /// `kagen worker` subcommand picks it up in integration tests
    /// without a dedicated CLI flag.
    pub fn from_env() -> FailureInjection {
        FailureInjection {
            fail_before_pe: std::env::var("KAGEN_WORKER_FAIL_PE")
                .ok()
                .and_then(|v| v.parse().ok()),
            fail_once_marker: std::env::var("KAGEN_WORKER_FAIL_ONCE")
                .ok()
                .map(std::path::PathBuf::from),
            stall_once_marker: std::env::var("KAGEN_WORKER_STALL_ONCE")
                .ok()
                .map(std::path::PathBuf::from),
        }
    }
}

/// Generate every shard of `pes` into `dir` on `threads` worker threads
/// (0 = all cores; multi-process launches default to 1 so W workers use
/// W cores), then persist the slice as `part-<a>-<b>.json`. Returns the
/// shard infos in PE order.
///
/// The partial manifest is written only after *every* shard of the range
/// is on disk — its existence is the worker's completion record.
pub fn run_worker(
    gen: &dyn StreamingGenerator,
    dir: &Path,
    format: ShardFormat,
    pes: Range<usize>,
    threads: usize,
    inject: FailureInjection,
) -> io::Result<Vec<ShardInfo>> {
    std::fs::create_dir_all(dir)?;
    if let Some(marker) = &inject.fail_once_marker {
        if !marker.exists() {
            std::fs::write(marker, b"failed once\n")?;
            return Err(io::Error::other(
                "injected transient failure (first attempt)",
            ));
        }
    }
    if let Some(marker) = &inject.stall_once_marker {
        if !marker.exists() {
            std::fs::write(marker, b"stalled once\n")?;
            // Wedge: no progress, no exit — the footprint of a hung
            // worker. Only the supervisor's stall watchdog ends this
            // attempt (by killing the process).
            loop {
                std::thread::sleep(std::time::Duration::from_secs(1));
            }
        }
    }
    crate::heartbeat::set_stage("generate");
    let (begin, end) = (pes.start, pes.end);
    let results: Vec<io::Result<ShardInfo>> =
        kagen_runtime::run_chunks(end - begin, threads, |i| {
            let pe = begin + i;
            if inject.fail_before_pe == Some(pe) {
                return Err(io::Error::other(format!("injected failure before PE {pe}")));
            }
            let shard = write_shard(gen, pe, dir, format)?;
            WORKER_PES_DONE.incr();
            Ok(shard)
        });
    let mut shards = Vec::with_capacity(results.len());
    for r in results {
        shards.push(r?);
    }
    let part = PartialManifest {
        pe_begin: begin as u64,
        pe_end: end as u64,
        shards: shards.clone(),
    };
    part.save(dir)?;
    crate::heartbeat::set_stage("done");
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_core::prelude::*;
    use kagen_pipeline::{validate_shard, PartialManifest};

    #[test]
    fn worker_writes_its_range_and_partial_manifest() {
        let gen = GnmUndirected::new(200, 1200).with_seed(5).with_chunks(6);
        let dir = std::env::temp_dir().join("kagen_worker_range");
        std::fs::remove_dir_all(&dir).ok();
        let shards = run_worker(
            &gen,
            &dir,
            ShardFormat::Compressed,
            2..5,
            1,
            FailureInjection::default(),
        )
        .unwrap();
        assert_eq!(shards.iter().map(|s| s.pe).collect::<Vec<_>>(), [2, 3, 4]);
        for info in &shards {
            validate_shard(&dir, ShardFormat::Compressed, info).unwrap();
        }
        let part = PartialManifest::load(&dir, 2, 5).unwrap();
        assert_eq!(part.shards, shards);
        // PEs outside the range were never touched.
        assert!(!dir.join("shard-00000.kgc").exists());
        assert!(!dir.join("shard-00005.kgc").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_failure_leaves_no_partial_manifest() {
        let gen = GnmUndirected::new(200, 1200).with_seed(5).with_chunks(6);
        let dir = std::env::temp_dir().join("kagen_worker_fail");
        std::fs::remove_dir_all(&dir).ok();
        let err = run_worker(
            &gen,
            &dir,
            ShardFormat::Compressed,
            0..6,
            1,
            FailureInjection {
                fail_before_pe: Some(3),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // Earlier shards may exist (killed mid-run), but the completion
        // record must not.
        assert!(PartialManifest::load(&dir, 0, 6).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_shards_match_single_process_writer() {
        // A worker writing PEs [a, b) produces byte-identical shard
        // files to the single-process write_sharded run.
        let gen = GnmDirected::new(300, 2400).with_seed(9).with_chunks(4);
        let whole = std::env::temp_dir().join("kagen_worker_whole");
        let slice = std::env::temp_dir().join("kagen_worker_slice");
        std::fs::remove_dir_all(&whole).ok();
        std::fs::remove_dir_all(&slice).ok();
        let meta = kagen_pipeline::InstanceMeta {
            model: "gnm_directed".into(),
            params: String::new(),
            seed: 9,
        };
        let manifest = kagen_pipeline::write_sharded(
            &gen,
            &meta,
            &kagen_pipeline::StreamConfig::new(&whole, ShardFormat::Compressed),
        )
        .unwrap();
        let shards = run_worker(
            &gen,
            &slice,
            ShardFormat::Compressed,
            1..3,
            1,
            FailureInjection::default(),
        )
        .unwrap();
        for info in &shards {
            assert_eq!(manifest.shards[info.pe as usize], *info);
            let a = std::fs::read(whole.join(&info.file)).unwrap();
            let b = std::fs::read(slice.join(&info.file)).unwrap();
            assert_eq!(a, b, "shard {} differs", info.pe);
        }
        std::fs::remove_dir_all(&whole).ok();
        std::fs::remove_dir_all(&slice).ok();
    }
}
