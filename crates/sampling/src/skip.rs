//! Bernoulli sampling with geometric skips (Batagelj & Brandes).
//!
//! Walks a universe selecting each element independently with probability
//! `p`, but in O(selected) time by jumping over the gaps. Used by the
//! G(n,p) leaves and by the Boost-style baseline.
//!
//! Two delivery shapes, one index stream:
//!
//! * [`bernoulli_sample`] — one emitted index per skip, one uniform per
//!   skip, drawn lazily: safe when the caller keeps using the PRNG
//!   afterwards (the per-edge path);
//! * [`bernoulli_sample_batched`] — skips converted in blocks
//!   ([`SkipSampler::skip_block`]) and indices handed out as sorted
//!   slices. Uniforms are consumed in the identical order, so the index
//!   stream is **bit-identical** to the per-edge path; the final block
//!   may draw ahead of the last emitted index, so the PRNG must be
//!   dedicated to this call (true of every per-leaf-seeded generator
//!   PRNG in this workspace).

use kagen_dist::geometric::SkipSampler;
use kagen_obs::Counter;
use kagen_util::Rng64;

/// Geometric skip blocks drawn by the batched Bernoulli sampler.
static ER_SKIP_BLOCKS: Counter = Counter::new("gen.er.skip_blocks");

/// Skips converted per block by the batched path: large enough that the
/// block fill and the `ln` conversion loop amortize their setup, small
/// enough that a block of skips plus its index slice stay L1-resident.
pub const SKIP_BLOCK: usize = 1024;

/// Emit every index of `[0, universe)` independently selected with
/// probability `p`, in increasing order.
pub fn bernoulli_sample<R: Rng64>(rng: &mut R, universe: u64, p: f64, emit: &mut impl FnMut(u64)) {
    if p <= 0.0 || universe == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..universe {
            emit(i);
        }
        return;
    }
    // Hoist the ln(1−p) reciprocal out of the skip loop — bit-identical
    // to converting every skip independently.
    let sampler = SkipSampler::new(p);
    let mut idx = sampler.skip_of(rng.next_f64_open());
    while idx < universe {
        emit(idx);
        let skip = sampler.skip_of(rng.next_f64_open());
        idx = match idx.checked_add(1).and_then(|x| x.checked_add(skip)) {
            Some(next) => next,
            None => break,
        };
    }
}

/// Batched [`bernoulli_sample`]: the same sorted index stream, delivered
/// as slices of at most [`SKIP_BLOCK`] indices.
///
/// Skips are drawn in blocks ([`SkipSampler::skip_block`]) and
/// prefix-summed into absolute indices; every skip consumes exactly one
/// uniform in the per-edge order, so the emitted stream is bit-identical
/// to [`bernoulli_sample`] with the same PRNG state. The last block may
/// consume uniforms beyond the terminating skip — callers must not reuse
/// the PRNG for anything order-sensitive afterwards.
pub fn bernoulli_sample_batched<R: Rng64>(
    rng: &mut R,
    universe: u64,
    p: f64,
    emit: &mut impl FnMut(&[u64]),
) {
    if p <= 0.0 || universe == 0 {
        return;
    }
    let mut out = [0u64; SKIP_BLOCK];
    if p >= 1.0 {
        // Everything selected; no uniforms consumed (matches the
        // per-edge path).
        let mut next = 0u64;
        while next < universe {
            let len = (universe - next).min(SKIP_BLOCK as u64) as usize;
            for (k, slot) in out[..len].iter_mut().enumerate() {
                *slot = next + k as u64;
            }
            emit(&out[..len]);
            next += len as u64;
        }
        return;
    }
    let sampler = SkipSampler::new(p);
    let mut skips = [0u64; SKIP_BLOCK];
    // `prev` is the last emitted index; the first skip is itself the
    // first candidate index.
    let mut prev: Option<u64> = None;
    loop {
        // Size each block by the expected number of skips still needed
        // (≈ remaining·p, plus 3σ and a constant floor so the common
        // case is exactly one block). Oversized blocks convert uniforms
        // that the termination check then throws away — on a ~512-edge
        // leaf a fixed 1024-skip block would waste half its `ln` work.
        // Sizing never changes the draw order, so the stream stays
        // bit-identical to the per-edge path.
        let consumed = prev.map_or(0, |q| q.saturating_add(1));
        let est = (universe - consumed) as f64 * p;
        let want = est + 3.0 * est.sqrt() + 8.0;
        let block = if want >= SKIP_BLOCK as f64 {
            SKIP_BLOCK
        } else {
            want as usize
        };
        ER_SKIP_BLOCKS.incr();
        sampler.skip_block(rng, &mut skips[..block]);
        let mut len = 0usize;
        for &s in skips[..block].iter() {
            let idx = match prev {
                None => s,
                Some(q) => match q.checked_add(1).and_then(|x| x.checked_add(s)) {
                    Some(next) => next,
                    None => {
                        // Index overflow: the per-edge path stops here.
                        if len > 0 {
                            emit(&out[..len]);
                        }
                        return;
                    }
                },
            };
            if idx >= universe {
                if len > 0 {
                    emit(&out[..len]);
                }
                return;
            }
            out[len] = idx;
            len += 1;
            prev = Some(idx);
        }
        emit(&out[..len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn count_matches_expectation() {
        let mut rng = Mt64::new(1);
        let universe = 1_000_000u64;
        let p = 0.001;
        let mut count = 0u64;
        bernoulli_sample(&mut rng, universe, p, &mut |_| count += 1);
        let expect = universe as f64 * p;
        let sd = (universe as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (count as f64 - expect).abs() < 5.0 * sd,
            "count {count} vs {expect}"
        );
    }

    #[test]
    fn sorted_unique_in_range() {
        let mut rng = Mt64::new(2);
        let mut last: Option<u64> = None;
        bernoulli_sample(&mut rng, 100_000, 0.01, &mut |x| {
            if let Some(l) = last {
                assert!(x > l);
            }
            assert!(x < 100_000);
            last = Some(x);
        });
    }

    #[test]
    fn p_one_selects_everything() {
        let mut rng = Mt64::new(3);
        let mut out = Vec::new();
        bernoulli_sample(&mut rng, 10, 1.0, &mut |x| out.push(x));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn p_zero_selects_nothing() {
        let mut rng = Mt64::new(4);
        let mut any = false;
        bernoulli_sample(&mut rng, 1000, 0.0, &mut |_| any = true);
        assert!(!any);
    }

    #[test]
    fn inclusion_probability_uniform() {
        // Every position equally likely: compare first and last decile.
        let mut rng = Mt64::new(5);
        let universe = 1000u64;
        let mut lo = 0u32;
        let mut hi = 0u32;
        for _ in 0..2000 {
            bernoulli_sample(&mut rng, universe, 0.05, &mut |x| {
                if x < 100 {
                    lo += 1;
                } else if x >= 900 {
                    hi += 1;
                }
            });
        }
        let ratio = lo as f64 / hi as f64;
        assert!((0.9..1.1).contains(&ratio), "lo {lo} hi {hi}");
    }

    fn batched_equals_per_edge(universe: u64, p: f64, seed: u64) {
        let mut a = Mt64::new(seed);
        let mut per_edge = Vec::new();
        bernoulli_sample(&mut a, universe, p, &mut |x| per_edge.push(x));
        let mut b = Mt64::new(seed);
        let mut batched = Vec::new();
        bernoulli_sample_batched(&mut b, universe, p, &mut |s| batched.extend_from_slice(s));
        assert_eq!(per_edge, batched, "universe={universe} p={p} seed={seed}");
    }

    #[test]
    fn batched_equivalence_edge_cases() {
        // p = 1, p within one ulp of 1, denormal-scale p, universes near
        // u64::MAX, and selection counts straddling the block boundary.
        for seed in 1..=5u64 {
            batched_equals_per_edge(10, 1.0, seed);
            batched_equals_per_edge(100_000, 0.9999999999999999, seed);
            batched_equals_per_edge(1_000_000, 1e-300, seed);
            batched_equals_per_edge(u64::MAX, 1e-18, seed);
            batched_equals_per_edge(u64::MAX - 1, 5e-19, seed);
            batched_equals_per_edge(0, 0.5, seed);
            batched_equals_per_edge(1, 0.5, seed);
            // ~SKIP_BLOCK ± a few selected: exercise the emit boundary.
            batched_equals_per_edge(2 * SKIP_BLOCK as u64, 0.5, seed);
            batched_equals_per_edge(SKIP_BLOCK as u64, 1.0, seed);
            batched_equals_per_edge(SKIP_BLOCK as u64 + 1, 1.0, seed);
            batched_equals_per_edge(100_000, 0.01, seed);
        }
    }

    #[test]
    fn batched_blocks_are_bounded_and_ordered() {
        let mut rng = Mt64::new(9);
        let mut last: Option<u64> = None;
        bernoulli_sample_batched(&mut rng, 500_000, 0.02, &mut |s| {
            assert!(s.len() <= SKIP_BLOCK);
            for &x in s {
                if let Some(l) = last {
                    assert!(x > l);
                }
                last = Some(x);
            }
        });
        assert!(last.is_some());
    }
}
