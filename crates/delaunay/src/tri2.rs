//! Incremental Bowyer–Watson Delaunay triangulation in 2D.
//!
//! Standard scheme: a super-triangle encloses all input points; points are
//! inserted one by one by (1) locating the containing triangle with a
//! visibility walk, (2) flooding the *cavity* of triangles whose
//! circumcircle contains the point, (3) retriangulating the cavity
//! boundary as a fan around the new point. Triangles touching the
//! super-vertices are excluded from the output.

use crate::predicates::{incircle2, orient2, Sign};
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug)]
struct Tri {
    v: [u32; 3], // counter-clockwise
}

/// A 2D Delaunay triangulation.
#[derive(Debug)]
pub struct Delaunay2 {
    pts: Vec<[f64; 2]>,
    n_input: usize,
    tris: Vec<Tri>,
    alive: Vec<bool>,
    /// Directed edge (a,b) → triangle that has it in CCW order.
    edge_tri: BTreeMap<(u32, u32), u32>,
    last: u32,
}

impl Delaunay2 {
    /// Triangulate `points` (at least 1 point). Duplicate points must not
    /// be present.
    pub fn new(points: &[[f64; 2]]) -> Self {
        let n = points.len();
        let mut pts = points.to_vec();
        // Super-triangle comfortably containing the bounding box.
        let (mut lo, mut hi) = ([f64::MAX; 2], [f64::MIN; 2]);
        for p in points {
            for i in 0..2 {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        if n == 0 {
            lo = [0.0; 2];
            hi = [1.0; 2];
        }
        let cx = (lo[0] + hi[0]) / 2.0;
        let cy = (lo[1] + hi[1]) / 2.0;
        let span = (hi[0] - lo[0]).max(hi[1] - lo[1]).max(1.0);
        let s = 64.0 * span;
        let s0 = n as u32;
        let s1 = n as u32 + 1;
        let s2 = n as u32 + 2;
        pts.push([cx - 2.0 * s, cy - s]);
        pts.push([cx + 2.0 * s, cy - s]);
        pts.push([cx, cy + 2.0 * s]);

        let mut dt = Delaunay2 {
            pts,
            n_input: n,
            tris: Vec::with_capacity(4 * n + 8),
            alive: Vec::with_capacity(4 * n + 8),
            edge_tri: BTreeMap::new(),
            last: 0,
        };
        dt.push_tri([s0, s1, s2]);
        for i in 0..n as u32 {
            dt.insert(i);
        }
        dt
    }

    fn push_tri(&mut self, v: [u32; 3]) -> u32 {
        let id = self.tris.len() as u32;
        self.tris.push(Tri { v });
        self.alive.push(true);
        for k in 0..3 {
            let a = v[k];
            let b = v[(k + 1) % 3];
            self.edge_tri.insert((a, b), id);
        }
        id
    }

    fn kill_tri(&mut self, t: u32) {
        self.alive[t as usize] = false;
        let v = self.tris[t as usize].v;
        for k in 0..3 {
            let key = (v[k], v[(k + 1) % 3]);
            if self.edge_tri.get(&key) == Some(&t) {
                self.edge_tri.remove(&key);
            }
        }
    }

    /// Visibility walk from the last inserted triangle; falls back to a
    /// linear scan if the walk stalls (degenerate configurations).
    fn locate(&self, p: [f64; 2]) -> u32 {
        let mut t = self.last;
        if !self.alive[t as usize] {
            t = self
                .alive
                .iter()
                .position(|&a| a)
                .expect("no alive triangles") as u32;
        }
        let max_steps = 4 * self.tris.len() + 64;
        let mut steps = 0usize;
        'walk: loop {
            steps += 1;
            if steps > max_steps {
                break;
            }
            let v = self.tris[t as usize].v;
            for k in 0..3 {
                let a = v[k];
                let b = v[(k + 1) % 3];
                if orient2(self.pts[a as usize], self.pts[b as usize], p) == Sign::Negative {
                    match self.edge_tri.get(&(b, a)) {
                        Some(&next) => {
                            t = next;
                            continue 'walk;
                        }
                        None => break 'walk, // outside hull: fall back
                    }
                }
            }
            return t;
        }
        // Fallback: exhaustive containment scan.
        for (i, tri) in self.tris.iter().enumerate() {
            if !self.alive[i] {
                continue;
            }
            let [a, b, c] = tri.v;
            let (pa, pb, pc) = (
                self.pts[a as usize],
                self.pts[b as usize],
                self.pts[c as usize],
            );
            if orient2(pa, pb, p) != Sign::Negative
                && orient2(pb, pc, p) != Sign::Negative
                && orient2(pc, pa, p) != Sign::Negative
            {
                return i as u32;
            }
        }
        panic!("point {p:?} not inside the super-triangle");
    }

    fn insert(&mut self, pi: u32) {
        let p = self.pts[pi as usize];
        let start = self.locate(p);

        // Cavity flood fill over circumcircle-violating triangles.
        let mut cavity = vec![start];
        let mut in_cavity = std::collections::BTreeSet::from([start]);
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            let v = self.tris[t as usize].v;
            for k in 0..3 {
                let a = v[k];
                let b = v[(k + 1) % 3];
                if let Some(&nb) = self.edge_tri.get(&(b, a)) {
                    if in_cavity.contains(&nb) {
                        continue;
                    }
                    let nv = self.tris[nb as usize].v;
                    if incircle2(
                        self.pts[nv[0] as usize],
                        self.pts[nv[1] as usize],
                        self.pts[nv[2] as usize],
                        p,
                    ) == Sign::Positive
                    {
                        in_cavity.insert(nb);
                        cavity.push(nb);
                        stack.push(nb);
                    }
                }
            }
        }

        // Boundary edges: cavity edges whose mirror is not in the cavity.
        let mut boundary: Vec<(u32, u32)> = Vec::with_capacity(cavity.len() + 2);
        for &t in &cavity {
            let v = self.tris[t as usize].v;
            for k in 0..3 {
                let a = v[k];
                let b = v[(k + 1) % 3];
                match self.edge_tri.get(&(b, a)) {
                    Some(&nb) if in_cavity.contains(&nb) => {}
                    _ => boundary.push((a, b)),
                }
            }
        }

        for &t in &cavity {
            self.kill_tri(t);
        }
        let mut last = 0;
        for (a, b) in boundary {
            last = self.push_tri([a, b, pi]);
        }
        self.last = last;
    }

    /// Number of input points.
    pub fn num_points(&self) -> usize {
        self.n_input
    }

    /// Coordinates of an input point.
    pub fn point(&self, i: usize) -> [f64; 2] {
        self.pts[i]
    }

    /// Is `i` one of the three synthetic super-triangle vertices?
    #[inline]
    pub fn is_super(&self, i: u32) -> bool {
        i as usize >= self.n_input
    }

    /// All finite triangles (no super vertices), as input-point indices.
    pub fn triangles(&self) -> Vec<[u32; 3]> {
        self.tris
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(t, _)| t.v)
            .filter(|v| v.iter().all(|&i| !self.is_super(i)))
            .collect()
    }

    /// Like [`Self::triangles`] but including super-vertex triangles
    /// (needed for the RDG halo-convergence checks).
    pub fn all_triangles(&self) -> Vec<[u32; 3]> {
        self.tris
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(t, _)| t.v)
            .collect()
    }

    /// Undirected finite edges, deduplicated and sorted.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for t in self.triangles() {
            for k in 0..3 {
                let a = t[k];
                let b = t[(k + 1) % 3];
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::{Mt64, Rng64};

    fn random_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut rng = Mt64::new(seed);
        (0..n).map(|_| [rng.next_f64(), rng.next_f64()]).collect()
    }

    /// Empty-circumcircle check against all points (O(T·n), test only).
    fn assert_delaunay(pts: &[[f64; 2]], tris: &[[u32; 3]]) {
        for t in tris {
            let (a, b, c) = (pts[t[0] as usize], pts[t[1] as usize], pts[t[2] as usize]);
            for (i, p) in pts.iter().enumerate() {
                if t.contains(&(i as u32)) {
                    continue;
                }
                assert_ne!(
                    incircle2(a, b, c, *p),
                    Sign::Positive,
                    "point {i} inside circumcircle of {t:?}"
                );
            }
        }
    }

    #[test]
    fn single_triangle() {
        let pts = vec![[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]];
        let dt = Delaunay2::new(&pts);
        assert_eq!(dt.triangles().len(), 1);
        assert_eq!(dt.edges().len(), 3);
    }

    #[test]
    fn square_two_triangles() {
        let pts = vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let dt = Delaunay2::new(&pts);
        assert_eq!(dt.triangles().len(), 2);
        // 4 hull edges + 1 diagonal.
        assert_eq!(dt.edges().len(), 5);
    }

    #[test]
    fn delaunay_property_random() {
        for seed in [1u64, 2, 3] {
            let pts = random_points(120, seed);
            let dt = Delaunay2::new(&pts);
            let tris = dt.triangles();
            assert!(!tris.is_empty());
            assert_delaunay(&pts, &tris);
        }
    }

    #[test]
    fn euler_formula_interiorish() {
        // For a triangulation of a point set (with hull h):
        // T = 2n - h - 2, E = 3n - h - 3.
        let pts = random_points(200, 9);
        let dt = Delaunay2::new(&pts);
        let t = dt.triangles().len() as i64;
        let e = dt.edges().len() as i64;
        let n = 200i64;
        // h from the two identities: h = 2n - 2 - t and e = 3n - 3 - h.
        let h = 2 * n - 2 - t;
        assert!(h >= 3 && h < n, "implausible hull size {h}");
        assert_eq!(e, 3 * n - 3 - h, "Euler mismatch");
    }

    #[test]
    fn collinear_grid_handled() {
        // A 5x5 lattice has many cocircular quadruples; the triangulation
        // must still cover the square: T = 2n - h - 2 with h = 16.
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                pts.push([x as f64, y as f64]);
            }
        }
        let dt = Delaunay2::new(&pts);
        let t = dt.triangles().len();
        assert_eq!(t, 2 * 25 - 16 - 2, "lattice triangulation incomplete");
    }

    #[test]
    fn insertion_order_independence_of_size() {
        // Different orders may flip cocircular diagonals but must keep the
        // triangle count (a function of n and h only).
        let pts = random_points(80, 4);
        let mut rev = pts.clone();
        rev.reverse();
        let a = Delaunay2::new(&pts).triangles().len();
        let b = Delaunay2::new(&rev).triangles().len();
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_points() {
        // Points in a tiny cluster plus far outliers.
        let mut pts = random_points(50, 5);
        for p in pts.iter_mut().take(25) {
            p[0] = 0.5 + p[0] * 1e-6;
            p[1] = 0.5 + p[1] * 1e-6;
        }
        let dt = Delaunay2::new(&pts);
        assert_delaunay(&pts, &dt.triangles());
    }
}
