//! The coordinator: plan ranks, supervise workers, maintain the ledger,
//! federate the final manifest.
//!
//! The coordinator never generates an edge itself. It spawns workers
//! (separate OS processes via [`ProcessRunner`], or plain function calls
//! via [`InProcessRunner`]), records each rank's outcome in the ledger
//! after it finishes, and — once every PE's shard is done — validates
//! the per-shard checksums and writes the federated `manifest.json`. A
//! failed or killed worker leaves its PEs `pending`; a later
//! [`resume`](LaunchOptions::resume) launch re-plans exactly the missing
//! or invalid PEs and reuses everything else.

use crate::ledger::{Ledger, RankStatus};
use crate::plan::{plan_ranks, plan_repairs, RankTask};
use crate::worker::{run_worker, FailureInjection};
use kagen_core::streaming::StreamingGenerator;
use kagen_pipeline::{validate_shard, Manifest, PartialManifest, RunHeader, ShardFormat};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Mutex;

/// How the coordinator executes one rank task. The two implementations
/// — a re-exec'd OS process and an in-process function call — run the
/// identical worker code path ([`run_worker`]); the trait exists so
/// supervision, ledger and resume logic can be tested (and used on one
/// machine) without process-spawn overhead, and so tests can inject
/// failures deterministically.
pub trait WorkerRunner: Sync {
    /// Execute `task`, returning the shard infos it produced.
    /// An `Err` marks the rank failed; its PEs stay pending.
    fn run(&self, task: &RankTask) -> io::Result<Vec<kagen_pipeline::ShardInfo>>;
}

/// Spawn `exe worker <args> --pe-range a..b --rank r` as a child
/// process, wait for it, and collect its partial manifest.
pub struct ProcessRunner {
    /// Binary to execute (normally `std::env::current_exe()` — the
    /// launcher re-execs itself).
    pub exe: PathBuf,
    /// Everything the worker needs except the PE range and rank: the
    /// model name, its parameters, seed, chunks, format, shard dir.
    pub worker_args: Vec<String>,
    /// Shard directory (to read partial manifests back).
    pub dir: PathBuf,
}

impl WorkerRunner for ProcessRunner {
    fn run(&self, task: &RankTask) -> io::Result<Vec<kagen_pipeline::ShardInfo>> {
        let status = std::process::Command::new(&self.exe)
            .arg("worker")
            .args(&self.worker_args)
            .arg("--pe-range")
            .arg(format!("{}..{}", task.pe_begin, task.pe_end))
            .arg("--rank")
            .arg(task.rank.to_string())
            .status()?;
        if !status.success() {
            return Err(io::Error::other(format!(
                "worker rank {} (PEs {}..{}) exited with {status}",
                task.rank, task.pe_begin, task.pe_end
            )));
        }
        let part = PartialManifest::load(&self.dir, task.pe_begin as u64, task.pe_end as u64)?;
        // The ledger takes over as the record; drop the part file.
        std::fs::remove_file(self.dir.join(PartialManifest::file_name(
            task.pe_begin as u64,
            task.pe_end as u64,
        )))
        .ok();
        Ok(part.shards)
    }
}

/// Run the worker code path in this process — same bytes on disk, no
/// fork/exec. Carries an optional failure injection per PE for
/// supervision and resume tests.
pub struct InProcessRunner<'a> {
    /// The generator every worker derives its slice from.
    pub gen: &'a dyn StreamingGenerator,
    /// Shard directory.
    pub dir: PathBuf,
    /// Shard format.
    pub format: ShardFormat,
    /// Worker threads per task (0 = all cores, 1 = serial).
    pub threads: usize,
    /// PEs whose generation should abort the owning task (tests).
    pub fail_pes: HashSet<usize>,
}

impl<'a> InProcessRunner<'a> {
    /// Runner for `gen` writing `format` shards into `dir`, serial per
    /// task, no injected failures.
    pub fn new(
        gen: &'a dyn StreamingGenerator,
        dir: impl Into<PathBuf>,
        format: ShardFormat,
    ) -> Self {
        InProcessRunner {
            gen,
            dir: dir.into(),
            format,
            threads: 1,
            fail_pes: HashSet::new(),
        }
    }
}

impl WorkerRunner for InProcessRunner<'_> {
    fn run(&self, task: &RankTask) -> io::Result<Vec<kagen_pipeline::ShardInfo>> {
        let inject = FailureInjection {
            fail_before_pe: task.pes().find(|pe| self.fail_pes.contains(pe)),
        };
        let shards = run_worker(
            self.gen,
            &self.dir,
            self.format,
            task.pes(),
            self.threads,
            inject,
        )?;
        std::fs::remove_file(self.dir.join(PartialManifest::file_name(
            task.pe_begin as u64,
            task.pe_end as u64,
        )))
        .ok();
        Ok(shards)
    }
}

/// Coordinator knobs.
#[derive(Clone, Copy, Debug)]
pub struct LaunchOptions {
    /// Maximum concurrently running workers (and the fresh-run rank
    /// count).
    pub workers: usize,
    /// Resume an interrupted/failed/corrupted run instead of starting
    /// fresh: reuse every shard that still validates, regenerate the
    /// rest.
    pub resume: bool,
    /// Re-read and checksum-validate every shard written by this
    /// launch before federating the final manifest (reused shards were
    /// already validated during resume planning). The end-to-end
    /// integrity guarantee; skip for very large runs where
    /// generation-time checksums are trusted.
    pub validate: bool,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            workers: 1,
            resume: false,
            validate: true,
        }
    }
}

/// What a launch did, beyond the manifest it produced.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// The federated manifest (also written to `manifest.json`).
    pub manifest: Manifest,
    /// Tasks actually spawned by this launch, in plan order.
    pub spawned: Vec<RankTask>,
    /// PEs regenerated by this launch.
    pub regenerated_pes: Vec<usize>,
    /// Shards reused from the previous run (resume only).
    pub reused_shards: u64,
    /// PEs whose existing shards failed resume-time validation and were
    /// regenerated (subset of `regenerated_pes`).
    pub invalidated_pes: Vec<usize>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Prepare the ledger and task list for this launch (fresh or resume).
fn prepare(
    dir: &Path,
    header: &RunHeader,
    opts: &LaunchOptions,
    format: ShardFormat,
) -> io::Result<(Ledger, Vec<RankTask>, Vec<usize>)> {
    if !opts.resume {
        if Ledger::exists(dir) {
            return Err(invalid(format!(
                "{} already contains a run ledger; resume it or remove the directory",
                dir.display()
            )));
        }
        let tasks = plan_ranks(header.chunks as usize, opts.workers);
        let ledger = Ledger::new(header.clone(), opts.workers, &tasks);
        return Ok((ledger, tasks, Vec::new()));
    }

    let mut ledger = Ledger::load(dir)?;
    if ledger.header != *header {
        return Err(invalid(format!(
            "resume parameter mismatch: ledger was written by `{} {}` seed {} chunks {} \
             format {}, this launch is `{} {}` seed {} chunks {} format {}",
            ledger.header.model,
            ledger.header.params,
            ledger.header.seed,
            ledger.header.chunks,
            ledger.header.format,
            header.model,
            header.params,
            header.seed,
            header.chunks,
            header.format,
        )));
    }
    // Re-verify every shard the ledger believes is done: a deleted,
    // truncated or corrupted file flips its PE back to pending.
    let mut invalidated = Vec::new();
    for info in ledger.done_shards() {
        if validate_shard(dir, format, &info).is_err() {
            invalidated.push(info.pe as usize);
            ledger.invalidate_shard(info.pe as usize);
        }
    }
    let tasks = plan_repairs(&ledger.missing_pes(), opts.workers);
    ledger.workers = opts.workers;
    ledger.set_plan(&tasks);
    Ok((ledger, tasks, invalidated))
}

/// Run a full coordinated launch: plan → supervise workers (at most
/// `opts.workers` concurrently) → ledger after every completion →
/// validate → federate `manifest.json`.
///
/// On worker failure the launch finishes the remaining tasks, persists
/// the ledger, and returns an error naming the failed ranks — the run
/// directory is then resumable.
pub fn launch(
    dir: &Path,
    header: &RunHeader,
    opts: &LaunchOptions,
    runner: &dyn WorkerRunner,
) -> io::Result<LaunchReport> {
    let format = ShardFormat::parse(&header.format)
        .ok_or_else(|| invalid(format!("unknown shard format '{}'", header.format)))?;
    std::fs::create_dir_all(dir)?;
    let (mut ledger, tasks, invalidated_pes) = prepare(dir, header, opts, format)?;
    let reused_shards = header.chunks - ledger.missing_pes().len() as u64;
    let regenerated_pes: Vec<usize> = ledger.missing_pes();
    ledger.save(dir)?;

    // Supervise: a shared queue drained by `workers` supervisor
    // threads; the coordinator thread serializes ledger updates, saving
    // after every rank so a killed coordinator stays resumable.
    let queue: Mutex<VecDeque<RankTask>> = Mutex::new(tasks.iter().cloned().collect());
    let (tx, rx) = mpsc::channel::<(usize, io::Result<Vec<kagen_pipeline::ShardInfo>>)>();
    let supervisors = opts.workers.min(tasks.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..supervisors {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || {
                loop {
                    // Pop in its own statement: a `while let` scrutinee
                    // would keep the MutexGuard alive across
                    // `runner.run()` and serialize every worker.
                    let task = queue.lock().unwrap().pop_front();
                    let Some(task) = task else { return };
                    let result = runner.run(&task);
                    if tx.send((task.rank, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for (rank, result) in rx {
            match result {
                Ok(shards) => ledger.record_rank_done(rank, shards),
                Err(e) => {
                    eprintln!("kagen launch: rank {rank} failed: {e}");
                    ledger.record_rank_failed(rank);
                }
            }
            // Persist progress immediately; surface IO errors after the
            // scope (a failed save must not strand worker threads).
            if let Err(e) = ledger.save(dir) {
                eprintln!("kagen launch: ledger save failed: {e}");
            }
        }
    });

    let failed: Vec<usize> = ledger
        .ranks
        .iter()
        .filter(|r| r.status == RankStatus::Failed)
        .map(|r| r.rank)
        .collect();
    if !failed.is_empty() {
        return Err(io::Error::other(format!(
            "{} of {} ranks failed ({:?}); the run is resumable",
            failed.len(),
            ledger.ranks.len(),
            failed
        )));
    }

    let shards = ledger.done_shards();
    if opts.validate {
        // Only the shards written by *this* launch need the post-run
        // re-read; reused shards were already validated in `prepare`,
        // and their bytes cannot have changed since.
        let fresh: std::collections::HashSet<usize> = regenerated_pes.iter().copied().collect();
        for info in shards.iter().filter(|i| fresh.contains(&(i.pe as usize))) {
            validate_shard(dir, format, info).map_err(|e| {
                invalid(format!(
                    "post-run validation failed for shard {} — resume to regenerate it: {e}",
                    info.pe
                ))
            })?;
        }
    }
    let manifest = header.clone().federate(shards).map_err(invalid)?;
    manifest.save(dir)?;

    Ok(LaunchReport {
        manifest,
        spawned: tasks,
        regenerated_pes,
        reused_shards,
        invalidated_pes,
    })
}
