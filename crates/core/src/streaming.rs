//! Streaming edge output (§9 future work: "extend our remaining
//! generators to use a streaming approach … drastically reduce the memory
//! needed").
//!
//! [`StreamingGenerator::stream_pe`] emits a PE's edges through a callback
//! instead of materializing a [`PeGraph`](crate::PeGraph), so a PE's memory footprint is
//! its generator state (cells, counts, PRNGs) — not its output. For the
//! index-based generators (ER, BA, R-MAT, SBM) the state is O(log)-sized;
//! for the spatial/hyperbolic family it is the active cell neighborhood
//! of the cell-cursor core (`kagen_geometry::cell_stream`): the current
//! cell group plus an evicting frontier of recomputable cells (RGG/RDG),
//! the active query window (RHG/soft RHG), or replicated globals plus
//! the active-request windows (sRHG).
//!
//! Every implementation emits exactly `generate_pe`'s edge *set* in a
//! deterministic, chunk-stable order (asserted in tests): streaming
//! changes the delivery, never the instance. All generators except RDG
//! and sRHG preserve `generate_pe`'s edge *order* too; those two emit in
//! generation-sweep order (per cell group / per sweep annulus), because
//! reproducing the materialized path's globally sorted order would
//! require buffering the very output the streaming path exists to
//! avoid.

use crate::ba::BarabasiAlbert;
use crate::er::{GnmDirected, GnmUndirected, GnpDirected, GnpUndirected};
use crate::rdg::Rdg;
use crate::rgg::Rgg;
use crate::rhg::{Rhg, SoftRhg};
use crate::rmat::Rmat;
use crate::sbm::StochasticBlockModel;
use crate::srhg::Srhg;
use crate::Generator;
use kagen_obs::Counter;

/// Edges delivered through the batched streaming path (counted once per
/// flushed batch — never on the per-edge path).
static GEN_EDGES: Counter = Counter::new("gen.edges");
/// Batches flushed through the batched streaming path.
static GEN_BATCHES: Counter = Counter::new("gen.batches");

/// Default batch size (edges) of the batched streaming path: large enough
/// to amortize per-batch costs (seed hashing, virtual dispatch, slice
/// encoding), small enough to stay L1/L2-resident (64 KiB of pairs).
pub const BATCH_EDGES: usize = 4096;

/// The buffer-and-flush protocol of the batched streaming path, in one
/// place: push edges, emit a full slice whenever the buffer reaches its
/// capacity, and emit the ragged final slice on `finish`. The `push`
/// call is concrete and inlined, so generators streaming through a
/// `Batcher` keep their monomorphized hot loop.
struct Batcher<'a, 'e> {
    buf: &'a mut Vec<(u64, u64)>,
    emit: &'a mut BatchEmit<'e>,
    cap: usize,
}

impl<'a, 'e> Batcher<'a, 'e> {
    fn new(buf: &'a mut Vec<(u64, u64)>, emit: &'a mut BatchEmit<'e>) -> Self {
        buf.clear();
        if buf.capacity() == 0 {
            buf.reserve(BATCH_EDGES);
        }
        let cap = buf.capacity();
        Batcher { buf, emit, cap }
    }

    #[inline(always)]
    fn push(&mut self, u: u64, v: u64) {
        self.buf.push((u, v));
        if self.buf.len() >= self.cap {
            GEN_EDGES.add(self.buf.len() as u64);
            GEN_BATCHES.incr();
            (self.emit)(self.buf);
            self.buf.clear();
        }
    }

    fn finish(self) {
        if !self.buf.is_empty() {
            GEN_EDGES.add(self.buf.len() as u64);
            GEN_BATCHES.incr();
            (self.emit)(self.buf);
            self.buf.clear();
        }
    }
}

/// Shared driver for range-fill generators (R-MAT, BA): carve the index
/// range into capacity-sized sub-ranges, let `fill` append each one to
/// the buffer, emit every full buffer.
fn fill_range_batched(
    range: std::ops::Range<u64>,
    buf: &mut Vec<(u64, u64)>,
    emit: &mut BatchEmit,
    fill: impl Fn(std::ops::Range<u64>, &mut Vec<(u64, u64)>),
) {
    buf.clear();
    if buf.capacity() == 0 {
        buf.reserve(BATCH_EDGES);
    }
    let cap = buf.capacity() as u64;
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + cap).min(range.end);
        fill(lo..hi, buf);
        GEN_EDGES.add(buf.len() as u64);
        GEN_BATCHES.incr();
        emit(buf);
        buf.clear();
        lo = hi;
    }
}

/// The slice-consumer side of the batched streaming path.
pub type BatchEmit<'a> = dyn FnMut(&[(u64, u64)]) + 'a;

/// Edge-streaming extension of [`Generator`].
pub trait StreamingGenerator: Generator {
    /// Emit every edge PE `pe` is responsible for — exactly
    /// `generate_pe`'s edge set, in a deterministic order that is stable
    /// across thread counts and batch sizes (for most generators it is
    /// `generate_pe`'s order; RDG and sRHG stream in generation-sweep
    /// order, see the module docs).
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64));

    /// Emit PE `pe`'s edges in batches: `buf` is a caller-provided
    /// scratch buffer (its capacity sets the batch size; reserved to
    /// [`BATCH_EDGES`] if empty) and `emit` receives full slices. The
    /// concatenation of all slices equals the `stream_pe` stream
    /// edge-for-edge — batching changes delivery granularity, never the
    /// instance.
    ///
    /// The default buffers `stream_pe`; generators whose per-edge work
    /// can be amortized (seed hashing, descent-mode dispatch) override
    /// this with a genuinely batched fill.
    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        let mut b = Batcher::new(buf, emit);
        self.stream_pe(pe, &mut |u, v| b.push(u, v));
        b.finish();
    }

    /// Count a PE's edges without materializing them.
    fn count_pe(&self, pe: usize) -> u64 {
        let mut count = 0;
        self.stream_pe(pe, &mut |_, _| count += 1);
        count
    }

    /// Drive every PE in order through `emit` — the sequential sink
    /// driver used by the output pipeline when a single consumer wants
    /// the whole instance as one stream. Peak memory stays at
    /// generator-state size; no edge is ever buffered here.
    fn stream_all(&self, emit: &mut dyn FnMut(u64, u64)) {
        for pe in 0..self.num_chunks() {
            self.stream_pe(pe, emit);
        }
    }

    /// Batched analogue of [`StreamingGenerator::stream_all`]: every PE in
    /// order, slices instead of single edges. Peak memory is one batch.
    fn stream_all_batched(&self, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        for pe in 0..self.num_chunks() {
            self.stream_pe_batched(pe, buf, emit);
        }
    }

    /// Total edge count of the instance without materializing it.
    fn count_edges(&self) -> u64 {
        (0..self.num_chunks()).map(|pe| self.count_pe(pe)).sum()
    }
}

/// Shared override body for generators with a monomorphic
/// `stream_edges<F>`: push through a concrete closure (no per-edge
/// virtual dispatch), flush full slices.
macro_rules! batched_via_stream_edges {
    () => {
        fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
            let mut b = Batcher::new(buf, emit);
            self.stream_edges(pe, &mut |u: u64, v: u64| b.push(u, v));
            b.finish();
        }
    };
}

/// Shared override body for the ER generators: the block-batched fill
/// (`stream_edges_batched` — blocked skip conversion for G(n,p), the
/// block-treated Method D for G(n,m)) pushing through a concrete
/// closure into the batcher. Same edge stream as `stream_pe`, off the
/// per-edge transcendental/dispatch bound.
macro_rules! batched_via_fill {
    () => {
        fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
            let mut b = Batcher::new(buf, emit);
            self.stream_edges_batched(pe, &mut |u: u64, v: u64| b.push(u, v));
            b.finish();
        }
    };
}

impl StreamingGenerator for GnmDirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }

    batched_via_fill!();
}

impl StreamingGenerator for GnpDirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }

    batched_via_fill!();
}

impl StreamingGenerator for GnmUndirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }

    batched_via_fill!();
}

impl StreamingGenerator for GnpUndirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }

    batched_via_fill!();
}

impl StreamingGenerator for BarabasiAlbert {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        for slot in self.pe_slot_range(pe) {
            let (u, v) = self.edge(slot);
            emit(u, v);
        }
    }

    /// Batched fill: the hashed resolve-base seed is derived once per
    /// batch instead of once per edge.
    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        fill_range_batched(self.pe_slot_range(pe), buf, emit, |r, out| {
            self.fill_edges(r, out)
        });
    }
}

impl StreamingGenerator for Rmat {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        for e in self.pe_edge_range(pe) {
            let (u, v) = self.edge(e);
            emit(u, v);
        }
    }

    /// Batched fill: one hashed seed per edge block and one descent-mode
    /// dispatch per batch (see [`Rmat::fill_edges`]) — the §8.6.1 variate
    /// cost drops from hash+descent to `mix2`+descent per edge.
    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        fill_range_batched(self.pe_edge_range(pe), buf, emit, |r, out| {
            self.fill_edges(r, out)
        });
    }
}

impl StreamingGenerator for StochasticBlockModel {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }

    batched_via_stream_edges!();
}

impl<const D: usize> StreamingGenerator for Rgg<D> {
    /// Cell-cursor streaming (§5): Morton walk with an evicting frontier
    /// of recomputable cells — memory is the active 3^d neighborhood,
    /// the stream is edge-for-edge `generate_pe`'s.
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_cells(pe, &mut |u, v| emit(u, v));
    }

    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        let mut b = Batcher::new(buf, emit);
        self.stream_cells(pe, &mut |u, v| b.push(u, v));
        b.finish();
    }
}

impl<const D: usize> StreamingGenerator for Rdg<D> {
    /// Per-cell-group triangulation (§6): each local cell is
    /// triangulated with its certified halo rings and emits only the
    /// edges it owns — memory is one cell group plus the distance-1
    /// halo frontier. The stream is ordered cell-by-cell (sorted within
    /// a cell); as a set it equals `generate_pe`'s sorted list.
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_cells(pe, &mut |u, v| emit(u, v));
    }

    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        let mut b = Batcher::new(buf, emit);
        self.stream_cells(pe, &mut |u, v| b.push(u, v));
        b.finish();
    }
}

impl StreamingGenerator for Rhg {
    /// Streaming Δθ queries (§7.1) over the evicting frontier cache —
    /// memory is the active query window, the stream is edge-for-edge
    /// `generate_pe`'s sorted list.
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_query(pe, &mut |u, v| emit(u, v));
    }

    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        let mut b = Batcher::new(buf, emit);
        self.stream_query(pe, &mut |u, v| b.push(u, v));
        b.finish();
    }
}

impl StreamingGenerator for Srhg {
    /// The request-centric sweep (§7.2) with sliding request insertion —
    /// live state is replicated globals + active-request windows. The
    /// stream is emitted in sweep order: as a set it equals
    /// `generate_pe`'s (sorted) list; cross-PE duplicates deduplicate on
    /// merge as for every undirected generator.
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.sweep(pe, &mut |u, v| emit(u, v), None);
    }

    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        let mut b = Batcher::new(buf, emit);
        self.sweep(pe, &mut |u, v| b.push(u, v), None);
        b.finish();
    }
}

impl StreamingGenerator for SoftRhg {
    /// Streaming truncated-radius queries (§9 soft model) over the
    /// evicting frontier cache; edge-for-edge `generate_pe`'s list.
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_query(pe, &mut |u, v| emit(u, v));
    }

    fn stream_pe_batched(&self, pe: usize, buf: &mut Vec<(u64, u64)>, emit: &mut BatchEmit) {
        let mut b = Batcher::new(buf, emit);
        self.stream_query(pe, &mut |u, v| b.push(u, v));
        b.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn assert_stream_matches<G: StreamingGenerator>(gen: &G) {
        for pe in 0..gen.num_chunks().min(5) {
            let materialized = gen.generate_pe(pe).edges;
            let mut streamed = Vec::new();
            gen.stream_pe(pe, &mut |u, v| streamed.push((u, v)));
            assert_eq!(materialized, streamed, "PE {pe}");
            assert_eq!(gen.count_pe(pe) as usize, materialized.len());
        }
        assert_batched_matches(gen);
    }

    /// Like [`assert_stream_matches`], for generators whose native
    /// stream order is the generation sweep, not `generate_pe`'s sorted
    /// list: the streams must be equal as *sets* (and duplicate-free),
    /// and the batched path must equal the per-edge stream exactly.
    fn assert_stream_set_matches<G: StreamingGenerator>(gen: &G) {
        for pe in 0..gen.num_chunks().min(5) {
            let materialized = gen.generate_pe(pe).edges;
            let mut streamed = Vec::new();
            gen.stream_pe(pe, &mut |u, v| streamed.push((u, v)));
            assert_eq!(gen.count_pe(pe) as usize, streamed.len());
            let mut sorted = streamed.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), streamed.len(), "PE {pe}: duplicate edges");
            let mut reference = materialized;
            reference.sort_unstable();
            assert_eq!(reference, sorted, "PE {pe}: edge sets differ");
            // Batched delivery must reproduce the per-edge stream
            // edge-for-edge (order included).
            let mut buf = Vec::with_capacity(7);
            let mut batched = Vec::new();
            gen.stream_pe_batched(pe, &mut buf, &mut |edges| batched.extend_from_slice(edges));
            assert_eq!(streamed, batched, "PE {pe}: batched order differs");
        }
    }

    /// The batched path must yield edge-for-edge the same stream as
    /// `generate_pe`/`stream_pe`, for every PE and any batch capacity.
    fn assert_batched_matches<G: StreamingGenerator + ?Sized>(gen: &G) {
        for pe in 0..gen.num_chunks() {
            let materialized = gen.generate_pe(pe).edges;
            // Default capacity, plus a tiny odd one that forces many
            // flushes and ragged final slices.
            for cap in [0usize, 7] {
                let mut buf = Vec::with_capacity(cap);
                let mut batched = Vec::new();
                let mut batches = 0usize;
                gen.stream_pe_batched(pe, &mut buf, &mut |edges| {
                    assert!(!edges.is_empty(), "empty batch emitted");
                    batched.extend_from_slice(edges);
                    batches += 1;
                });
                assert_eq!(materialized, batched, "PE {pe} cap {cap}");
                if cap == 7 && materialized.len() > 7 {
                    assert!(batches > 1, "PE {pe}: tiny capacity must flush often");
                }
            }
        }
    }

    #[test]
    fn gnm_directed_stream() {
        assert_stream_matches(&GnmDirected::new(300, 2000).with_seed(3).with_chunks(5));
    }

    #[test]
    fn gnm_undirected_stream() {
        assert_stream_matches(&GnmUndirected::new(300, 2000).with_seed(3).with_chunks(5));
    }

    #[test]
    fn gnp_streams() {
        assert_stream_matches(&GnpDirected::new(200, 0.05).with_seed(4).with_chunks(4));
        assert_stream_matches(&GnpUndirected::new(200, 0.05).with_seed(4).with_chunks(4));
    }

    #[test]
    fn ba_stream() {
        assert_stream_matches(&BarabasiAlbert::new(500, 3).with_seed(5).with_chunks(8));
    }

    #[test]
    fn rmat_stream() {
        assert_stream_matches(&Rmat::new(9, 3000).with_seed(6).with_chunks(8));
        assert_stream_matches(
            &Rmat::new(9, 3000)
                .with_seed(6)
                .with_chunks(8)
                .with_table_levels(4),
        );
        assert_stream_matches(
            &Rmat::new(9, 3000)
                .with_seed(6)
                .with_chunks(8)
                .with_kernel(crate::RmatKernel::Linear { levels: 4 }),
        );
        // Linear kernel above the old scale-32 table cliff.
        assert_stream_matches(
            &Rmat::new(33, 3000)
                .with_seed(6)
                .with_chunks(8)
                .with_kernel(crate::RmatKernel::Linear { levels: 8 }),
        );
    }

    #[test]
    fn sbm_stream() {
        assert_stream_matches(
            &StochasticBlockModel::planted(300, 3, 0.1, 0.01)
                .with_seed(7)
                .with_chunks(6),
        );
    }

    #[test]
    fn rgg_stream() {
        assert_stream_matches(&Rgg2d::new(400, 0.08).with_seed(8).with_chunks(16));
    }

    #[test]
    fn spatial_and_hyperbolic_streams() {
        assert_stream_set_matches(&Rdg2d::new(200).with_seed(9).with_chunks(4));
        assert_stream_matches(&Rhg::new(300, 6.0, 2.8).with_seed(10).with_chunks(4));
        assert_stream_set_matches(&Srhg::new(300, 6.0, 2.8).with_seed(10).with_chunks(4));
        assert_stream_matches(
            &SoftRhg::new(300, 6.0, 2.8, 0.4)
                .with_seed(11)
                .with_chunks(4),
        );
    }

    #[test]
    fn batched_equivalence_across_chunk_counts() {
        // Every generator with a batched path, at ≥2 chunk counts each:
        // the batched stream must equal the per-edge stream exactly.
        for chunks in [1usize, 3, 8] {
            assert_batched_matches(&GnmDirected::new(300, 2000).with_seed(3).with_chunks(chunks));
            assert_batched_matches(
                &GnmUndirected::new(300, 2000)
                    .with_seed(3)
                    .with_chunks(chunks),
            );
            assert_batched_matches(&GnpDirected::new(200, 0.05).with_seed(4).with_chunks(chunks));
            assert_batched_matches(
                &GnpUndirected::new(200, 0.05)
                    .with_seed(4)
                    .with_chunks(chunks),
            );
            assert_batched_matches(&BarabasiAlbert::new(500, 3).with_seed(5).with_chunks(chunks));
            assert_batched_matches(&Rmat::new(9, 3000).with_seed(6).with_chunks(chunks));
            assert_batched_matches(
                &Rmat::new(9, 3000)
                    .with_seed(6)
                    .with_chunks(chunks)
                    .with_table_levels(4),
            );
            assert_batched_matches(
                &Rmat::new(9, 3000)
                    .with_seed(6)
                    .with_chunks(chunks)
                    .with_kernel(crate::RmatKernel::Linear { levels: 4 }),
            );
            assert_batched_matches(
                &Rmat::new(33, 3000)
                    .with_seed(6)
                    .with_chunks(chunks)
                    .with_kernel(crate::RmatKernel::Linear { levels: 8 }),
            );
            assert_batched_matches(
                &StochasticBlockModel::planted(300, 3, 0.1, 0.01)
                    .with_seed(7)
                    .with_chunks(chunks),
            );
        }
    }

    #[test]
    fn spatial_streams_across_chunk_counts() {
        // Every spatial/hyperbolic generator, at three chunk counts,
        // through both the per-edge and batched entry points: the
        // streamed edge set must equal `generate_pe`'s for every PE
        // (order included where the generator preserves it).
        for chunks in [1usize, 3, 8] {
            assert_stream_matches(&Rgg2d::new(300, 0.07).with_seed(8).with_chunks(chunks));
            assert_stream_matches(&Rgg3d::new(250, 0.14).with_seed(8).with_chunks(chunks));
            assert_stream_set_matches(&Rdg2d::new(250).with_seed(9).with_chunks(chunks));
            assert_stream_matches(&Rhg::new(300, 6.0, 2.8).with_seed(10).with_chunks(chunks));
            assert_stream_set_matches(&Srhg::new(300, 6.0, 2.8).with_seed(10).with_chunks(chunks));
            assert_stream_matches(
                &SoftRhg::new(250, 6.0, 2.8, 0.4)
                    .with_seed(11)
                    .with_chunks(chunks),
            );
        }
        // 3D Delaunay is the most expensive group pass; one chunked and
        // one unchunked instance cover it.
        assert_stream_set_matches(&Rdg3d::new(200).with_seed(9).with_chunks(1));
        assert_stream_set_matches(&Rdg3d::new(200).with_seed(9).with_chunks(8));
    }

    #[test]
    fn spatial_streams_agree_between_generators() {
        // The RHG family samples one instance per seed: the *streamed*
        // union across PEs must agree between the query-centric and
        // request-centric generators, exactly like the materialized
        // paths do.
        let rhg = Rhg::new(400, 7.0, 2.7).with_seed(13).with_chunks(4);
        let srhg = Srhg::new(400, 7.0, 2.7).with_seed(13).with_chunks(4);
        let collect = |gen: &dyn StreamingGenerator| {
            let mut edges = Vec::new();
            gen.stream_all(&mut |u, v| edges.push((u.min(v), u.max(v))));
            edges.sort_unstable();
            edges.dedup();
            edges
        };
        assert_eq!(collect(&rhg), collect(&srhg));
    }

    #[test]
    fn stream_all_batched_concatenates_pes() {
        let gen = Rmat::new(9, 2500).with_seed(12).with_chunks(6);
        let mut whole = Vec::new();
        gen.stream_all(&mut |u, v| whole.push((u, v)));
        let mut buf = Vec::new();
        let mut batched = Vec::new();
        gen.stream_all_batched(&mut buf, &mut |edges| batched.extend_from_slice(edges));
        assert_eq!(whole, batched);
    }

    #[test]
    fn stream_all_concatenates_pes() {
        let gen = GnmDirected::new(300, 2000).with_seed(3).with_chunks(5);
        let mut streamed = Vec::new();
        gen.stream_all(&mut |u, v| streamed.push((u, v)));
        let mut materialized = Vec::new();
        for pe in 0..5 {
            materialized.extend(gen.generate_pe(pe).edges);
        }
        assert_eq!(streamed, materialized);
        assert_eq!(gen.count_edges(), 2000);
    }

    #[test]
    fn trait_is_object_safe() {
        // The CLI streams through `&dyn StreamingGenerator`.
        let gen = Rmat::new(8, 500).with_seed(2).with_chunks(4);
        let dyn_gen: &dyn StreamingGenerator = &gen;
        assert_eq!(dyn_gen.count_edges(), 500);
        let mut count = 0u64;
        dyn_gen.stream_all(&mut |_, _| count += 1);
        assert_eq!(count, 500);
    }

    #[test]
    fn streaming_needs_no_edge_buffer() {
        // A "write-to-sink" consumer: peak allocation is the generator
        // state, demonstrated by only keeping a running checksum.
        let gen = GnmDirected::new(2000, 50_000).with_seed(9).with_chunks(4);
        let mut checksum = 0u64;
        let mut count = 0u64;
        for pe in 0..4 {
            gen.stream_pe(pe, &mut |u, v| {
                checksum = checksum.wrapping_mul(31).wrapping_add(u ^ v);
                count += 1;
            });
        }
        assert_eq!(count, 50_000);
        assert_ne!(checksum, 0);
    }
}
