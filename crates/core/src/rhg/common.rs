//! Shared RHG instance structure (annuli → cells → points).
//!
//! * Vertex counts per annulus: a multinomial over the annulus masses,
//!   drawn from a globally seeded PRNG — identical on every PE (§7.1).
//! * Within an annulus: a power-of-two number of equal angular cells
//!   (expected ≈ 8 points per cell); counts assigned by a binary
//!   binomial-splitting tree with node-seeded PRNGs.
//! * Points of a cell: PRNG seeded by (annulus, cell); the angular
//!   coordinate is uniform in the cell, the radius is drawn by inverse-CDF
//!   conditioning on the annulus' radial interval.
//! * Vertex ids: annulus offset + left-sibling prefix inside the annulus
//!   tree + index in cell — all derivable by any PE without communication.
//!
//! The instance is a pure function of `(n, d̄, γ, seed)`; the number of PEs
//! does not enter (DESIGN.md: instance-vs-P decoupling).

use kagen_dist::{binomial, multinomial};
use kagen_geometry::hyperbolic::{PrePoint, RhgSpace};
use kagen_geometry::{FrontierCache, FrontierStats};
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Mt64, Rng64};
use std::collections::BTreeMap;

/// Target expected points per angular cell (the paper's tuning parameter c,
/// "typically 8", §7.2.1).
pub const POINTS_PER_CELL: u64 = 8;

/// The deterministic instance skeleton shared by RHG and sRHG.
#[derive(Debug)]
pub struct RhgInstance {
    /// Geometry (R, α, annuli bounds, …).
    pub space: RhgSpace,
    /// Instance seed.
    pub seed: u64,
    /// Vertices per annulus.
    pub ann_counts: Vec<u64>,
    /// Angular cells per annulus (powers of two).
    pub ann_cells: Vec<u64>,
    /// First global vertex id of each annulus (prefix sums).
    pub ann_offsets: Vec<u64>,
}

impl RhgInstance {
    /// Build the skeleton (cheap: O(#annuli) binomials).
    pub fn new(n: u64, avg_deg: f64, gamma: f64, seed: u64) -> Self {
        let space = RhgSpace::new(n, avg_deg, gamma);
        let k = space.num_annuli();
        let probs: Vec<f64> = (0..k).map(|i| space.annulus_prob(i)).collect();
        let mut rng = Mt64::new(derive_seed(seed, &[stream::HYP, 0]));
        let ann_counts = multinomial(&mut rng, n, &probs);
        let ann_cells: Vec<u64> = ann_counts
            .iter()
            .map(|&c| (c / POINTS_PER_CELL).max(1).next_power_of_two())
            .collect();
        let mut ann_offsets = Vec::with_capacity(k + 1);
        let mut acc = 0u64;
        for &c in &ann_counts {
            ann_offsets.push(acc);
            acc += c;
        }
        ann_offsets.push(acc);
        RhgInstance {
            space,
            seed,
            ann_counts,
            ann_cells,
            ann_offsets,
        }
    }

    /// Number of annuli.
    pub fn num_annuli(&self) -> usize {
        self.space.num_annuli()
    }

    /// Angular width of a cell in annulus `i`.
    #[inline]
    pub fn cell_width(&self, i: usize) -> f64 {
        std::f64::consts::TAU / self.ann_cells[i] as f64
    }

    /// Cell index containing angle `theta` in annulus `i`.
    #[inline]
    pub fn cell_of(&self, i: usize, theta: f64) -> u64 {
        let c = (theta / self.cell_width(i)) as u64;
        c.min(self.ann_cells[i] - 1)
    }

    /// (count, id-prefix) of cell `c` in annulus `i`, via the binary
    /// splitting tree. O(log cells) binomials.
    pub fn cell_count_prefix(&self, i: usize, c: u64) -> (u64, u64) {
        let cells = self.ann_cells[i];
        debug_assert!(c < cells);
        let mut count = self.ann_counts[i];
        let mut prefix = 0u64;
        let mut width = cells;
        let mut index = c;
        let mut level = 0u64;
        let mut rank = 0u64;
        while width > 1 {
            let node_seed = derive_seed(self.seed, &[stream::HYP, 1 + i as u64, level, rank]);
            let mut rng = Mt64::new(node_seed);
            let left = binomial(&mut rng, count as u128, 0.5);
            width /= 2;
            level += 1;
            if index < width {
                rank *= 2;
                count = left;
            } else {
                rank = rank * 2 + 1;
                prefix += left;
                count -= left;
                index -= width;
            }
        }
        (count, prefix)
    }

    /// Generate the points of cell `(i, c)` with precomputed adjacency
    /// terms and global ids. Deterministic; any PE can recompute any cell.
    pub fn cell_points(&self, i: usize, c: u64) -> Vec<PrePoint> {
        let (count, prefix) = self.cell_count_prefix(i, c);
        let width = self.cell_width(i);
        let theta_lo = c as f64 * width;
        let (r_lo, r_hi) = (self.space.bounds[i], self.space.bounds[i + 1]);
        let mut rng = Mt64::new(derive_seed(
            self.seed,
            &[stream::POINT, stream::HYP, i as u64, c],
        ));
        let base_id = self.ann_offsets[i] + prefix;
        (0..count)
            .map(|k| {
                let theta = theta_lo + width * rng.next_f64();
                let r = self.space.sample_radius_in(&mut rng, r_lo, r_hi);
                PrePoint::new(r, theta, base_id + k)
            })
            .collect()
    }

    /// The cells of annulus `i` overlapping the angular interval
    /// `[lo, hi]`, as `(first, count)` of the wrapped sequence
    /// `first, first+1, …` (mod `ann_cells[i]`). Each cell appears at
    /// most once; a full-circle interval covers every cell.
    pub fn overlap_range(&self, i: usize, lo: f64, hi: f64) -> (u64, u64) {
        let cells = self.ann_cells[i];
        let width = self.cell_width(i);
        if hi - lo >= std::f64::consts::TAU - 1e-12 {
            return (0, cells);
        }
        let lo_wrapped = lo.rem_euclid(std::f64::consts::TAU);
        let first = (lo_wrapped / width) as u64 % cells;
        let span = hi - lo;
        let count = ((span / width) as u64 + 2).min(cells);
        (first, count)
    }

    /// Call `f(cell)` for every cell of annulus `i` overlapping the angular
    /// interval `[lo, hi]` (handles wrap-around; each cell at most once).
    pub fn cells_overlapping(&self, i: usize, lo: f64, hi: f64, f: &mut impl FnMut(u64)) {
        let cells = self.ann_cells[i];
        let (first, count) = self.overlap_range(i, lo, hi);
        for k in 0..count {
            f((first + k) % cells);
        }
    }
}

/// Rank span of one local annulus in the query-stream sweep: local
/// sweep position `(annulus i, sector cell k)` maps to the monotone rank
/// `i · RANK_SPAN + k`, so retire ranks order totally across annuli.
/// Lookahead windows never exceed one full annulus of cells, which stays
/// far below the span.
const RANK_SPAN: u64 = 1 << 40;

/// The streaming, query-centric neighborhood pass shared by the
/// threshold ([`crate::rhg::Rhg`]) and binomial
/// ([`crate::rhg::SoftRhg`]) generators: iterate the PE's local vertices
/// in global-id order (annulus-major, cell-major — exactly how ids are
/// assigned), run each vertex's Δθ-bounded query through a
/// [`FrontierCache`] of recomputable cells, and emit `(v, u)` pairs with
/// `u` ascending per vertex. The concatenation is *identical* — order
/// included — to the sorted edge list the in-memory generators build,
/// while memory stays bounded by the active query window: a cached cell
/// retires as soon as the sweep has moved one lookahead window past it,
/// and is transparently recomputed if a later annulus queries it again.
///
/// Parameters: `dt(v, j)` is the angular query half-width of vertex `v`
/// into annulus `j` (Eq. 8 for the threshold model, the enlarged-radius
/// variant for the soft model); `dt_max(i, j)` an upper bound of `dt`
/// over all `v` in annulus `i` (for retire lookaheads — a wrong bound
/// costs recomputation, never correctness); `adjacent(u, v)` the exact
/// pair rule.
pub(crate) fn stream_pe_queries(
    inst: &RhgInstance,
    chunks: usize,
    pe: usize,
    dt_max: &impl Fn(usize, usize) -> f64,
    dt: &impl Fn(&PrePoint, usize) -> f64,
    adjacent: &impl Fn(&PrePoint, &PrePoint) -> bool,
    emit: &mut impl FnMut(u64, u64),
) -> FrontierStats {
    let tau = std::f64::consts::TAU;
    let (lo, hi) = (
        tau * pe as f64 / chunks as f64,
        tau * (pe as f64 + 1.0) / chunks as f64,
    );
    let annuli = inst.num_annuli();
    let mut cache: FrontierCache<(usize, u64), Vec<PrePoint>> = FrontierCache::new();
    let mut locals: Vec<PrePoint> = Vec::new();
    let mut nbrs: Vec<u64> = Vec::new();

    for i in 0..annuli {
        if inst.ann_counts[i] == 0 {
            continue;
        }
        let w_i = inst.cell_width(i);
        // Lookahead (in local-cell ranks) after which a fetched cell of
        // annulus `j` can no longer be touched by this annulus' sweep:
        // the touching vertices span at most one target cell plus two
        // query half-widths.
        let lookahead = |j: usize| -> u64 {
            let span = inst.cell_width(j) + 2.0 * dt_max(i, j);
            (span / w_i).ceil() as u64 + 2
        };
        let (first, count) = inst.overlap_range(i, lo, hi);
        for k in 0..count {
            let now = i as u64 * RANK_SPAN + k;
            cache.advance(now);
            let c = (first + k) % inst.ann_cells[i];
            // The local cell is also a query target of nearby vertices
            // (its own annulus and others), so it lives in the cache
            // like any other cell; copy the points out to iterate while
            // the cache serves the queries.
            locals.clear();
            locals.extend_from_slice(
                cache.get((i, c), now + lookahead(i), || inst.cell_points(i, c)),
            );
            cache.note_external(locals.len() as u64);
            for v in locals.iter().filter(|p| p.theta >= lo && p.theta < hi) {
                nbrs.clear();
                for j in 0..annuli {
                    if inst.ann_counts[j] == 0 {
                        continue;
                    }
                    let d = dt(v, j);
                    let (jfirst, jcount) = inst.overlap_range(j, v.theta - d, v.theta + d);
                    let retire = now + lookahead(j);
                    for kk in 0..jcount {
                        let cc = (jfirst + kk) % inst.ann_cells[j];
                        for u in cache.get((j, cc), retire, || inst.cell_points(j, cc)) {
                            if u.id != v.id && adjacent(u, v) {
                                // Local–local pairs once (id order); the
                                // other endpoint's PE emits cross pairs
                                // from its side, dedup happens on merge.
                                let u_local = u.theta >= lo && u.theta < hi;
                                if !u_local || u.id > v.id {
                                    nbrs.push(u.id);
                                }
                            }
                        }
                    }
                }
                nbrs.sort_unstable();
                nbrs.dedup();
                for &u in &nbrs {
                    emit(v.id, u);
                }
            }
        }
    }
    cache.stats()
}

/// A per-PE cache of generated cells (local and recomputed remote ones).
#[derive(Default, Debug)]
pub struct CellCache {
    cells: BTreeMap<(usize, u64), Vec<PrePoint>>,
}

impl CellCache {
    /// Get (possibly generating) the points of cell `(i, c)`.
    pub fn get<'a>(&'a mut self, inst: &RhgInstance, i: usize, c: u64) -> &'a [PrePoint] {
        self.cells
            .entry((i, c))
            .or_insert_with(|| inst.cell_points(i, c))
    }

    /// Number of cells generated so far (for the recomputation accounting
    /// in the experiments).
    pub fn generated_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of points held across all generated cells — the in-memory
    /// footprint proxy used by the `abl-mem` experiment (every cached
    /// point stores its precomputed Eq. 9 terms).
    pub fn generated_points(&self) -> u64 {
        self.cells.values().map(|v| v.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> RhgInstance {
        RhgInstance::new(4000, 8.0, 2.8, 7)
    }

    #[test]
    fn annulus_counts_conserve_n() {
        let i = inst();
        assert_eq!(i.ann_counts.iter().sum::<u64>(), 4000);
        assert_eq!(*i.ann_offsets.last().unwrap(), 4000);
    }

    #[test]
    fn cell_counts_conserve_annulus() {
        let i = inst();
        for a in 0..i.num_annuli() {
            let total: u64 = (0..i.ann_cells[a])
                .map(|c| i.cell_count_prefix(a, c).0)
                .sum();
            assert_eq!(total, i.ann_counts[a], "annulus {a}");
        }
    }

    #[test]
    fn prefixes_are_cumulative() {
        let i = inst();
        for a in 0..i.num_annuli() {
            let mut acc = 0u64;
            for c in 0..i.ann_cells[a] {
                let (count, prefix) = i.cell_count_prefix(a, c);
                assert_eq!(prefix, acc, "annulus {a} cell {c}");
                acc += count;
            }
        }
    }

    #[test]
    fn ids_globally_unique_and_dense() {
        let i = inst();
        let mut seen = vec![false; 4000];
        for a in 0..i.num_annuli() {
            for c in 0..i.ann_cells[a] {
                for p in i.cell_points(a, c) {
                    assert!(!seen[p.id as usize], "duplicate id {}", p.id);
                    seen[p.id as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "missing ids");
    }

    #[test]
    fn points_inside_their_cell_and_annulus() {
        let i = inst();
        for a in 0..i.num_annuli() {
            let w = i.cell_width(a);
            for c in 0..i.ann_cells[a].min(8) {
                for p in i.cell_points(a, c) {
                    assert!(p.theta >= c as f64 * w && p.theta < (c + 1) as f64 * w);
                    assert!(
                        p.r >= i.space.bounds[a] && p.r <= i.space.bounds[a + 1],
                        "r {} outside annulus {a}",
                        p.r
                    );
                }
            }
        }
    }

    #[test]
    fn recomputation_bit_identical() {
        let i = inst();
        let a = i.num_annuli() - 1;
        let p1 = i.cell_points(a, 3);
        let p2 = i.cell_points(a, 3);
        assert_eq!(p1.len(), p2.len());
        for (x, y) in p1.iter().zip(&p2) {
            assert_eq!(x.r.to_bits(), y.r.to_bits());
            assert_eq!(x.theta.to_bits(), y.theta.to_bits());
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn cells_overlapping_covers_interval() {
        let i = inst();
        let a = i.num_annuli() - 1;
        let w = i.cell_width(a);
        // Interval fully inside.
        let mut cells = Vec::new();
        i.cells_overlapping(a, 2.0 * w + 0.1 * w, 4.0 * w, &mut |c| cells.push(c));
        assert!(cells.contains(&2) && cells.contains(&3) && cells.contains(&4));
        // Wrapping interval.
        let mut wrapped = Vec::new();
        i.cells_overlapping(a, -w, w * 0.5, &mut |c| wrapped.push(c));
        assert!(wrapped.contains(&(i.ann_cells[a] - 1)) && wrapped.contains(&0));
        // Full circle.
        let mut all = Vec::new();
        i.cells_overlapping(a, 0.0, std::f64::consts::TAU, &mut |c| all.push(c));
        assert_eq!(all.len() as u64, i.ann_cells[a]);
    }

    #[test]
    fn radial_distribution_mass() {
        // The fraction of points in the outer half of the disk must match
        // the radial CDF (most mass lives near the rim).
        let i = RhgInstance::new(20_000, 8.0, 3.0, 3);
        let half = i.space.r_max / 2.0;
        let mut outer = 0u64;
        for a in 0..i.num_annuli() {
            for c in 0..i.ann_cells[a] {
                for p in i.cell_points(a, c) {
                    if p.r > half {
                        outer += 1;
                    }
                }
            }
        }
        let frac = outer as f64 / 20_000.0;
        let expect = 1.0 - i.space.radial_cdf(half);
        assert!((frac - expect).abs() < 0.02, "outer {frac} vs {expect}");
    }
}
