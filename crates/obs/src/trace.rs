//! Scoped span timers emitting Chrome trace-event JSON.
//!
//! A [`Span`] measures one named region of wall time. Spans are cheap
//! enough to use unconditionally — creation is one `Instant::now()` —
//! and double as the workspace's single clock source: [`Span::finish`]
//! returns the elapsed seconds, so bench harnesses time with the same
//! instrument that feeds `--trace-out`.
//!
//! When tracing is enabled ([`set_enabled`]), each finished span is
//! buffered as a Chrome "complete" event (`"ph": "X"`) and
//! [`write_chrome_trace`] dumps the buffer as a JSON object loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
//! microseconds since a process-wide epoch pinned on first use, thread
//! lanes are small dense ids in spawn order, and the `pid` is the real
//! OS pid so traces from federated worker ranks can be concatenated.
//!
//! ```
//! use kagen_obs::trace;
//!
//! trace::set_enabled(true);
//! let span = trace::span("doc.phase");
//! let secs = span.finish();
//! assert!(secs >= 0.0);
//! assert!(trace::chrome_trace_json().contains("doc.phase"));
//! ```

use std::borrow::Cow;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span buffering on or off process-wide. Enabling pins the trace
/// epoch, so timestamps are relative to roughly this call.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Release);
}

/// Whether spans are currently being buffered.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The trace epoch: the monotonic instant all `ts` values are relative
/// to, paired with the wall-clock unix microseconds captured at the
/// same moment. The wall half is the cross-process alignment anchor:
/// two processes can place their monotonic timelines on one axis by
/// shifting each event by the difference of the two anchors.
static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();

fn epoch_pair() -> (Instant, u64) {
    *EPOCH.get_or_init(|| {
        let unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), unix_us)
    })
}

fn epoch() -> Instant {
    epoch_pair().0
}

/// Wall-clock unix microseconds captured when the trace epoch was
/// pinned. An event's absolute wall time is `epoch_unix_us() + ts_us`;
/// federation uses this to realign worker timelines onto the
/// coordinator's clock. Pins the epoch if not already pinned.
pub fn epoch_unix_us() -> u64 {
    epoch_pair().1
}

/// One buffered "complete" event.
struct Event {
    name: Cow<'static, str>,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Dense per-thread lane id in spawn order (Chrome renders one row per
/// tid; OS thread ids would scatter rows unhelpfully).
fn tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// A running timer over one named region. Records itself into the
/// trace buffer when finished or dropped (if tracing is enabled), and
/// always reports elapsed wall time regardless of the tracing flag.
#[derive(Debug)]
pub struct Span {
    name: Cow<'static, str>,
    start: Instant,
    done: bool,
}

/// Start timing a named region.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    Span {
        name: name.into(),
        start: Instant::now(),
        done: false,
    }
}

impl Span {
    /// Seconds elapsed so far, without ending the span.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// End the span, record it into the trace buffer (when tracing is
    /// on), and return the elapsed seconds.
    pub fn finish(mut self) -> f64 {
        self.done = true;
        self.record()
    }

    fn record(&self) -> f64 {
        let elapsed = self.start.elapsed();
        if enabled() {
            // Saturates to zero if the span started before the epoch
            // was pinned (tracing enabled mid-run).
            let ts_us = self.start.duration_since(epoch()).as_micros() as u64;
            let ev = Event {
                name: self.name.clone(),
                ts_us,
                dur_us: elapsed.as_micros() as u64,
                tid: tid(),
            };
            EVENTS.lock().unwrap().push(ev);
        }
        elapsed.as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.record();
        }
    }
}

/// Number of events buffered so far.
pub fn event_count() -> usize {
    EVENTS.lock().unwrap().len()
}

/// One finished span, exported for sidecar serialization and trace
/// federation. Timestamps are microseconds relative to this process's
/// trace epoch (see [`epoch_unix_us`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: String,
    pub ts_us: u64,
    pub dur_us: u64,
    pub tid: u64,
}

/// Snapshot the buffered events as owned data.
pub fn events() -> Vec<TraceEvent> {
    EVENTS
        .lock()
        .unwrap()
        .iter()
        .map(|ev| TraceEvent {
            name: ev.name.to_string(),
            ts_us: ev.ts_us,
            dur_us: ev.dur_us,
            tid: ev.tid,
        })
        .collect()
}

/// Discard all buffered events.
pub fn clear() {
    EVENTS.lock().unwrap().clear();
}

/// Serialize the buffered events as a Chrome trace-event JSON object:
/// `{"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
/// "tid"}]}`. All values are strings or unsigned integers.
pub fn chrome_trace_json() -> String {
    let events = EVENTS.lock().unwrap();
    let pid = std::process::id();
    let mut out = String::with_capacity(64 + events.len() * 80);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        crate::metrics::escape_json_into(&mut out, &ev.name);
        out.push_str(&format!(
            ",\"cat\":\"kagen\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
            ev.ts_us, ev.dur_us, pid, ev.tid
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Write the buffered events to `path` as Chrome trace-event JSON.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The event buffer and enable flag are process-global; serialize.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_time_but_do_not_record() {
        let _g = locked();
        set_enabled(false);
        clear();
        let s = span("off.region");
        let secs = s.finish();
        assert!(secs >= 0.0);
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn finish_records_once_and_drop_does_not_double() {
        let _g = locked();
        set_enabled(true);
        clear();
        let s = span("on.finish");
        let _ = s.finish(); // drop runs after finish; must not re-record
        assert_eq!(event_count(), 1);
        {
            let _s = span("on.drop");
        } // recorded by Drop
        assert_eq!(event_count(), 2);
        set_enabled(false);
        clear();
    }

    #[test]
    fn chrome_json_shape() {
        let _g = locked();
        set_enabled(true);
        clear();
        let s = span("shape \"quoted\"");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let secs = s.finish();
        assert!(secs >= 0.001);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"shape \\\"quoted\\\"\""));
        assert!(json.contains("\"dur\":"));
        set_enabled(false);
        clear();
    }

    #[test]
    fn events_snapshot_and_wall_anchor() {
        let _g = locked();
        set_enabled(true);
        clear();
        let s = span("snap.region");
        let _ = s.finish();
        let evs = events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "snap.region");
        assert!(evs[0].tid >= 1);
        // The wall anchor is pinned once and stable across calls.
        let a = epoch_unix_us();
        assert_eq!(a, epoch_unix_us());
        // Sanity: after 2020-01-01 in microseconds.
        assert!(a > 1_577_836_800_000_000);
        set_enabled(false);
        clear();
    }

    #[test]
    fn owned_names_are_accepted() {
        let _g = locked();
        set_enabled(true);
        clear();
        let name = format!("rank-{}", 3);
        let s = span(name);
        let _ = s.finish();
        assert!(chrome_trace_json().contains("rank-3"));
        set_enabled(false);
        clear();
    }
}
