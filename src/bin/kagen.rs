//! `kagen` — command-line graph generation, mirroring the reference
//! KaGen application.
//!
//! ```text
//! kagen <model> [options]
//!
//! models:
//!   gnm_directed    -n <vertices> -m <edges>
//!   gnm_undirected  -n <vertices> -m <edges>
//!   gnp_directed    -n <vertices> -p <prob>
//!   gnp_undirected  -n <vertices> -p <prob>
//!   rgg2d           -n <vertices> -r <radius>     (default r: threshold)
//!   rgg3d           -n <vertices> -r <radius>
//!   rdg2d           -n <vertices>
//!   rdg3d           -n <vertices>
//!   rhg             -n <vertices> -d <avg-deg> -g <gamma>
//!   srhg            -n <vertices> -d <avg-deg> -g <gamma>
//!   soft-rhg        -n <vertices> -d <avg-deg> -g <gamma> -T <temperature>
//!   ba              -n <vertices> -d <edges-per-vertex>
//!   rmat            -n <vertices=2^k> -m <edges>
//!   sbm             -n <vertices> -b <blocks> --p-in <p> --p-out <p>
//!
//! common options:
//!   -s <seed>        instance seed            (default 1)
//!   -c <chunks>      logical PEs              (default 64)
//!   -t <threads>     worker threads           (default: all cores)
//!   -o <path>        output file              (default: stdout)
//!   -f <format>      edge-list | metis | binary (default edge-list)
//!   --stats          print graph statistics to stderr
//! ```

use kagen_repro::core::prelude::*;
use kagen_repro::graph::io::{write_binary, write_edge_list, write_metis};
use kagen_repro::graph::{merge_pe_edges, EdgeList};
use std::io::Write;

struct Options {
    model: String,
    n: u64,
    m: u64,
    p: f64,
    r: Option<f64>,
    d: f64,
    gamma: f64,
    temperature: f64,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
    chunks: usize,
    threads: usize,
    output: Option<String>,
    format: String,
    stats: bool,
}

fn usage() -> ! {
    eprintln!("see `kagen --help` (module docs) for usage");
    std::process::exit(2)
}

fn parse() -> Options {
    let mut o = Options {
        model: String::new(),
        n: 1 << 12,
        m: 1 << 15,
        p: 0.001,
        r: None,
        d: 8.0,
        gamma: 2.8,
        temperature: 0.5,
        blocks: 2,
        p_in: 0.01,
        p_out: 0.001,
        seed: 1,
        chunks: 64,
        threads: 0,
        output: None,
        format: "edge-list".into(),
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    let Some(model) = args.next() else { usage() };
    if model == "--help" || model == "-h" {
        println!("{}", include_str!("kagen.rs").lines()
            .take_while(|l| l.starts_with("//!"))
            .map(|l| l.trim_start_matches("//!").trim_start())
            .collect::<Vec<_>>()
            .join("\n"));
        std::process::exit(0);
    }
    o.model = model;
    let next = |args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| usage())
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "-n" => o.n = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-m" => o.m = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-p" => o.p = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-r" => o.r = Some(next(&mut args).parse().unwrap_or_else(|_| usage())),
            "-d" => o.d = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-g" => o.gamma = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-T" => o.temperature = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-b" => o.blocks = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--p-in" => o.p_in = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--p-out" => o.p_out = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-s" => o.seed = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-c" => o.chunks = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-t" => o.threads = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-o" => o.output = Some(next(&mut args)),
            "-f" => o.format = next(&mut args),
            "--stats" => o.stats = true,
            _ => usage(),
        }
    }
    o
}

fn merge_directed<G: Generator>(gen: &G, threads: usize) -> EdgeList {
    let parts = generate_parallel(gen, threads);
    let mut edges: Vec<(u64, u64)> = parts.into_iter().flat_map(|p| p.edges).collect();
    edges.sort_unstable();
    EdgeList::new(gen.num_vertices(), edges)
}

fn merge_undirected<G: Generator>(gen: &G, threads: usize) -> EdgeList {
    let parts = generate_parallel(gen, threads);
    merge_pe_edges(gen.num_vertices(), parts.into_iter().map(|p| p.edges))
}

fn main() {
    let o = parse();
    let started = std::time::Instant::now();
    let el = match o.model.as_str() {
        "gnm_directed" => merge_directed(
            &GnmDirected::new(o.n, o.m).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "gnm_undirected" => merge_undirected(
            &GnmUndirected::new(o.n, o.m).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "gnp_directed" => merge_directed(
            &GnpDirected::new(o.n, o.p).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "gnp_undirected" => merge_undirected(
            &GnpUndirected::new(o.n, o.p).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "rgg2d" => {
            let r = o.r.unwrap_or_else(|| Rgg2d::threshold_radius(o.n, 1));
            merge_undirected(
                &Rgg2d::new(o.n, r).with_seed(o.seed).with_chunks(o.chunks),
                o.threads,
            )
        }
        "rgg3d" => {
            let r = o.r.unwrap_or_else(|| Rgg3d::threshold_radius(o.n, 1));
            merge_undirected(
                &Rgg3d::new(o.n, r).with_seed(o.seed).with_chunks(o.chunks),
                o.threads,
            )
        }
        "rdg2d" => merge_undirected(
            &Rdg2d::new(o.n).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "rdg3d" => merge_undirected(
            &Rdg3d::new(o.n).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "rhg" => merge_undirected(
            &Rhg::new(o.n, o.d, o.gamma).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "srhg" => merge_undirected(
            &Srhg::new(o.n, o.d, o.gamma).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "soft-rhg" => merge_undirected(
            &SoftRhg::new(o.n, o.d, o.gamma, o.temperature)
                .with_seed(o.seed)
                .with_chunks(o.chunks),
            o.threads,
        ),
        "ba" => merge_directed(
            &BarabasiAlbert::new(o.n, o.d as u64).with_seed(o.seed).with_chunks(o.chunks),
            o.threads,
        ),
        "rmat" => {
            let scale = o.n.next_power_of_two().ilog2().max(1);
            merge_directed(
                &Rmat::new(scale, o.m).with_seed(o.seed).with_chunks(o.chunks),
                o.threads,
            )
        }
        "sbm" => merge_undirected(
            &StochasticBlockModel::planted(o.n, o.blocks, o.p_in, o.p_out)
                .with_seed(o.seed)
                .with_chunks(o.chunks),
            o.threads,
        ),
        _ => usage(),
    };
    let gen_time = started.elapsed();

    if o.stats {
        let deg = kagen_repro::graph::stats::DegreeStats::undirected(&el);
        eprintln!(
            "n = {}, m = {}, degrees {}/{:.2}/{}, generated in {:.3}s",
            el.n,
            el.edges.len(),
            deg.min,
            deg.mean,
            deg.max,
            gen_time.as_secs_f64()
        );
    }

    let write = |w: &mut dyn Write, el: &EdgeList| match o.format.as_str() {
        "edge-list" => write_edge_list(w, el),
        "metis" => write_metis(w, el),
        "binary" => write_binary(w, el),
        _ => usage(),
    };
    match &o.output {
        Some(path) => {
            let mut f = std::fs::File::create(path).expect("cannot create output file");
            write(&mut f, &el).expect("write failed");
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write(&mut lock, &el).expect("write failed");
        }
    }
}
