//! Experiment driver: regenerates every figure of the paper's evaluation.
//!
//! ```text
//! experiments <id>|all [--fast] [--write <path>]
//! ```
//!
//! * `<id>` — one of fig6..fig18, headline, abl-trig, abl-cells,
//!   abl-chunks (see DESIGN.md §5 for the index), or `all`;
//! * `--fast` — shrunken workloads (smoke-test mode);
//! * `--write <path>` — additionally append the results to a markdown
//!   file (used to produce EXPERIMENTS.md).

use kagen_bench::{run_experiment, ALL_EXPERIMENTS};
use kagen_obs::{error, info, trace};
use std::io::Write;

fn main() {
    kagen_obs::log::init_from_env();
    kagen_obs::log::set_prefix("experiments");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut fast = false;
    let mut write_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--write" => write_path = it.next(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        error!("usage: experiments <id>|all [--fast] [--write <path>]");
        error!("available: {}", ALL_EXPERIMENTS.join(", "));
        std::process::exit(2);
    }
    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let mut output = String::new();
    for id in selected {
        let span = trace::span(format!("experiment.{id}"));
        match run_experiment(id, fast) {
            Some(section) => {
                info!("[{id}] done in {:.1}s", span.finish());
                println!("{section}");
                output.push_str(&section);
                output.push('\n');
            }
            None => {
                error!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = write_path {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("cannot open output file");
        f.write_all(output.as_bytes()).expect("write failed");
        info!("appended results to {path}");
    }
}
