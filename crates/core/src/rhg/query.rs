//! The in-memory, query-centric RHG generator (§7.1).
//!
//! Each PE owns the angular sector `[2πp/P, 2π(p+1)/P)`. For every local
//! vertex it runs a neighborhood query through all annuli: the angular
//! deviation bound Δθ(r_v, ℓ_j) (Eq. 8) selects candidate cells, whose
//! points are tested with the trig-free Eq. 9. Cells of non-local chunks
//! encountered during the search are *recomputed* into a per-PE cache —
//! the paper's inward/outward search recomputation, realized through the
//! deterministic cell scheme of [`super::common`].

use super::common::{stream_pe_queries, CellCache, RhgInstance};
use crate::{Generator, PeGraph};
use kagen_geometry::hyperbolic::PrePoint;
use kagen_geometry::FrontierStats;

/// Random hyperbolic graph (threshold model), in-memory generator.
#[derive(Clone, Debug)]
pub struct Rhg {
    n: u64,
    avg_deg: f64,
    gamma: f64,
    seed: u64,
    chunks: usize,
}

impl Rhg {
    /// `n` vertices, target average degree `avg_deg`, power-law exponent
    /// `gamma` (> 2).
    pub fn new(n: u64, avg_deg: f64, gamma: f64) -> Self {
        Rhg {
            n,
            avg_deg,
            gamma,
            seed: 1,
            chunks: 8,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs (angular sectors).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Build the shared instance skeleton.
    pub fn instance(&self) -> RhgInstance {
        RhgInstance::new(self.n, self.avg_deg, self.gamma, self.seed)
    }

    /// All neighbors of `v` found by scanning every annulus with the Δθ
    /// bound. `emit` receives each adjacent point (including non-local).
    pub(crate) fn query_neighbors(
        inst: &RhgInstance,
        cache: &mut CellCache,
        v: &PrePoint,
        emit: &mut impl FnMut(&PrePoint),
    ) {
        let cosh_r = inst.space.cosh_r;
        for j in 0..inst.num_annuli() {
            if inst.ann_counts[j] == 0 {
                continue;
            }
            let dt = inst.space.delta_theta(v.r, inst.space.bounds[j].max(1e-12));
            let mut cells = Vec::new();
            inst.cells_overlapping(j, v.theta - dt, v.theta + dt, &mut |c| cells.push(c));
            for c in cells {
                for u in cache.get(inst, j, c) {
                    if u.id != v.id && v.is_adjacent(u, cosh_r) {
                        emit(u);
                    }
                }
            }
        }
    }
}

impl Rhg {
    /// The native streaming pass: the same Δθ-bounded queries as
    /// [`Generator::generate_pe`], but through the evicting frontier
    /// cache of [`stream_pe_queries`] — the emitted stream equals the
    /// in-memory generator's sorted edge list edge-for-edge, with memory
    /// bounded by the active query window instead of every recomputed
    /// cell.
    pub(crate) fn stream_query(&self, pe: usize, emit: &mut impl FnMut(u64, u64)) -> FrontierStats {
        let inst = self.instance();
        let cosh_r = inst.space.cosh_r;
        stream_pe_queries(
            &inst,
            self.chunks,
            pe,
            &|i, j| {
                inst.space.delta_theta(
                    inst.space.bounds[i].max(1e-12),
                    inst.space.bounds[j].max(1e-12),
                )
            },
            &|v, j| inst.space.delta_theta(v.r, inst.space.bounds[j].max(1e-12)),
            &|u, v| v.is_adjacent(u, cosh_r),
            emit,
        )
    }

    /// Stream PE `pe`'s edges and report the frontier accounting — the
    /// hook the memory-regression tests use.
    pub fn stream_pe_instrumented(
        &self,
        pe: usize,
        emit: &mut impl FnMut(u64, u64),
    ) -> FrontierStats {
        self.stream_query(pe, emit)
    }
}

impl Generator for Rhg {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        self.generate_pe_stats(pe).0
    }
}

impl Rhg {
    /// Like [`Generator::generate_pe`], additionally returning the number
    /// of points this PE had to generate (local + recomputed) — the
    /// memory-footprint proxy of the `abl-mem` experiment. The in-memory
    /// generator must *hold* all of them for its queries, which is the
    /// §7.2 motivation for sRHG.
    pub fn generate_pe_stats(&self, pe: usize) -> (PeGraph, u64) {
        let inst = self.instance();
        let tau = std::f64::consts::TAU;
        let sector = (
            tau * pe as f64 / self.chunks as f64,
            tau * (pe as f64 + 1.0) / self.chunks as f64,
        );
        let mut cache = CellCache::default();
        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };

        // Collect local vertices: cells overlapping the sector, filtered by
        // angular ownership.
        let mut locals: Vec<PrePoint> = Vec::new();
        for i in 0..inst.num_annuli() {
            if inst.ann_counts[i] == 0 {
                continue;
            }
            let mut cells = Vec::new();
            inst.cells_overlapping(i, sector.0, sector.1, &mut |c| cells.push(c));
            for c in cells {
                for p in cache.get(&inst, i, c) {
                    if p.theta >= sector.0 && p.theta < sector.1 {
                        locals.push(*p);
                    }
                }
            }
        }
        locals.sort_by_key(|p| p.id);

        let local_ids: std::collections::BTreeSet<u64> = locals.iter().map(|p| p.id).collect();
        for v in &locals {
            out.coords2.push((v.id, [v.r, v.theta]));
        }
        out.vertex_begin = locals.first().map_or(0, |p| p.id);
        out.vertex_end = locals.last().map_or(0, |p| p.id + 1);

        // Neighborhood queries: all incident edges of local vertices;
        // local–local pairs emitted once (id order).
        let mut edges = Vec::new();
        for v in &locals {
            Rhg::query_neighbors(&inst, &mut cache, v, &mut |u| {
                if !local_ids.contains(&u.id) || u.id > v.id {
                    edges.push((v.id, u.id));
                }
            });
        }
        edges.sort_unstable();
        edges.dedup();
        out.edges = edges;
        (out, cache.generated_points())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_undirected;

    /// Brute-force reference over the full instance point set.
    fn brute_force(inst: &RhgInstance) -> Vec<(u64, u64)> {
        let mut pts = Vec::new();
        for a in 0..inst.num_annuli() {
            for c in 0..inst.ann_cells[a] {
                pts.extend(inst.cell_points(a, c));
            }
        }
        let mut edges = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].is_adjacent(&pts[j], inst.space.cosh_r) {
                    let (a, b) = (pts[i].id.min(pts[j].id), pts[i].id.max(pts[j].id));
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    #[test]
    fn matches_brute_force() {
        let gen = Rhg::new(600, 8.0, 2.8).with_seed(5).with_chunks(4);
        let el = generate_undirected(&gen);
        let reference = brute_force(&gen.instance());
        assert_eq!(el.edges, reference);
    }

    #[test]
    fn chunk_invariance() {
        let a = generate_undirected(&Rhg::new(800, 6.0, 3.0).with_seed(9).with_chunks(1));
        let b = generate_undirected(&Rhg::new(800, 6.0, 3.0).with_seed(9).with_chunks(8));
        let c = generate_undirected(&Rhg::new(800, 6.0, 3.0).with_seed(9).with_chunks(32));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn average_degree_near_target() {
        // Eq. 2 has (1 + o(1)) corrections; allow a generous band.
        let n = 20_000u64;
        let target = 12.0;
        let el = generate_undirected(&Rhg::new(n, target, 2.6).with_seed(3).with_chunks(8));
        let avg = 2.0 * el.edges.len() as f64 / n as f64;
        assert!(
            avg > 0.5 * target && avg < 2.0 * target,
            "average degree {avg} vs target {target}"
        );
    }

    #[test]
    fn power_law_tail_present() {
        let n = 20_000u64;
        let el = generate_undirected(&Rhg::new(n, 10.0, 2.4).with_seed(7).with_chunks(8));
        let deg = el.degrees_undirected();
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<u64>() as f64 / n as f64;
        // γ = 2.4 ⇒ heavy tail: the hub should exceed the mean many-fold.
        assert!(
            max as f64 > 15.0 * mean,
            "max degree {max} vs mean {mean} — no heavy tail?"
        );
    }

    #[test]
    fn no_self_loops_or_out_of_range() {
        let el = generate_undirected(&Rhg::new(500, 6.0, 3.0).with_seed(1).with_chunks(4));
        assert!(!el.has_self_loops());
        assert!(!el.has_out_of_range());
    }
}
