//! # kagen-bench
//!
//! The experiment harness: one module per figure of the paper's
//! evaluation (§8), plus the ablations called out in DESIGN.md. The
//! `experiments` binary dispatches on experiment ids and emits
//! EXPERIMENTS.md-ready markdown. Absolute numbers are machine-local; the
//! reproduction target is the *shape* of each figure (who wins, scaling
//! slopes, crossovers).

pub mod ablations;
pub mod er_exp;
pub mod headline;
pub mod lemmas;
pub mod rdg_exp;
pub mod rgg_exp;
pub mod rhg_exp;
pub mod rmat_exp;
pub mod support;

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "headline",
    "abl-trig",
    "abl-cells",
    "abl-chunks",
    "abl-rmat",
    "abl-mem",
    "abl-gpu",
    "lemma-oe",
    "lemma-global",
];

/// Run one experiment by id; `fast` shrinks workloads (CI mode).
pub fn run_experiment(id: &str, fast: bool) -> Option<String> {
    Some(match id {
        "fig6" => er_exp::fig6_sequential(fast),
        "fig7" => er_exp::fig7_weak_scaling(fast),
        "fig8" => er_exp::fig8_strong_scaling(fast),
        "fig9" => rgg_exp::fig9_vs_holtgrewe(fast),
        "fig10" => rgg_exp::fig10_weak_scaling(fast),
        "fig11" => rgg_exp::fig11_strong_scaling(fast),
        "fig12" => rdg_exp::fig12_weak_scaling(fast),
        "fig13" => rdg_exp::fig13_strong_scaling(fast),
        "fig14" => rhg_exp::fig14_shootout(fast),
        "fig15" => rhg_exp::fig15_weak_scaling(fast),
        "fig16" => rhg_exp::fig16_strong_scaling(fast),
        "fig17" => rmat_exp::fig17_weak_scaling(fast),
        "fig18" => rmat_exp::fig18_strong_scaling(fast),
        "headline" => headline::throughput(fast),
        "abl-trig" => ablations::trig_free(fast),
        "abl-cells" => ablations::cell_batching(fast),
        "abl-chunks" => ablations::redundancy(fast),
        "abl-rmat" => ablations::rmat_tables(fast),
        "abl-mem" => lemmas::memory_footprint(fast),
        "abl-gpu" => lemmas::gpu_pipelines(fast),
        "lemma-oe" => lemmas::overestimation(fast),
        "lemma-global" => lemmas::global_annuli(fast),
        _ => return None,
    })
}
