//! The simulated accelerator: grid-of-blocks execution with SIMD lockstep
//! semantics and performance accounting (§2.3).
//!
//! A [`Device`] executes a *kernel* over a grid of independent blocks.
//! Blocks are scheduled onto the rayon pool — like CUDA thread blocks onto
//! streaming multiprocessors, they may run in any order and cannot
//! communicate (the API gives a block no handle to any other block).
//! Within a block, the kernel advances its work items in warp-sized
//! lockstep groups via [`BlockCtx::simd_for`]; a warp whose lanes take
//! different branches is counted as *divergent*, because on the real
//! machine its branches serialize (§2.3: "threads of a block taking
//! different branches are no longer processed in parallel but
//! sequentially").
//!
//! The simulation is *functionally exact* (it runs the same arithmetic the
//! GPU kernels would) and *cost-transparent* (the [`DeviceStats`] counters
//! expose launches, block count, warp-steps, divergence, and global-memory
//! traffic so experiments can reason about accelerator efficiency without
//! accelerator hardware).

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Launch geometry and warp shape of the simulated device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Threads per block (CUDA `blockDim`); bounds per-block lockstep width.
    pub threads_per_block: usize,
    /// SIMD width: work items advance in groups of this size.
    pub warp_size: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            threads_per_block: 256,
            warp_size: 32,
        }
    }
}

/// Cumulative accelerator counters (shared by all launches of a device).
#[derive(Default, Debug)]
pub struct DeviceStats {
    /// Kernel launches issued by the host.
    pub kernel_launches: AtomicU64,
    /// Blocks executed across all launches.
    pub blocks_executed: AtomicU64,
    /// Lockstep warp steps executed (the SIMD time proxy).
    pub warp_steps: AtomicU64,
    /// Warps whose lanes disagreed on a branch (serialized on real HW).
    pub divergent_warps: AtomicU64,
    /// Bytes read from simulated global memory.
    pub gmem_read: AtomicU64,
    /// Bytes written to simulated global memory.
    pub gmem_write: AtomicU64,
}

/// A plain-value snapshot of [`DeviceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Kernel launches issued by the host.
    pub kernel_launches: u64,
    /// Blocks executed across all launches.
    pub blocks_executed: u64,
    /// Lockstep warp steps executed.
    pub warp_steps: u64,
    /// Divergent warps observed.
    pub divergent_warps: u64,
    /// Bytes read from global memory.
    pub gmem_read: u64,
    /// Bytes written to global memory.
    pub gmem_write: u64,
}

/// The simulated accelerator.
#[derive(Default, Debug)]
pub struct Device {
    /// Launch geometry.
    pub cfg: DeviceConfig,
    stats: DeviceStats,
}

/// Per-block execution context handed to kernels.
#[derive(Debug)]
pub struct BlockCtx<'a> {
    /// This block's index within the launch grid.
    pub block: usize,
    cfg: DeviceConfig,
    stats: &'a DeviceStats,
    // Locally accumulated to avoid atomic traffic in inner loops.
    warp_steps: u64,
    divergent: u64,
    read: u64,
    write: u64,
}

impl BlockCtx<'_> {
    /// Process `items` work items in SIMD lockstep: warp-size groups step
    /// together, `f(item)` returns the branch its lane took, and warps with
    /// mixed branches are counted as divergent.
    pub fn simd_for(&mut self, items: usize, mut f: impl FnMut(usize) -> bool) {
        let w = self.cfg.warp_size.max(1);
        let mut base = 0;
        while base < items {
            let lanes = w.min(items - base);
            let mut taken = 0usize;
            for lane in 0..lanes {
                taken += f(base + lane) as usize;
            }
            self.warp_steps += 1;
            if taken != 0 && taken != lanes {
                self.divergent += 1;
            }
            base += lanes;
        }
    }

    /// Account a global-memory read of `bytes`.
    #[inline]
    pub fn gmem_read(&mut self, bytes: usize) {
        self.read += bytes as u64;
    }

    /// Account a global-memory write of `bytes`.
    #[inline]
    pub fn gmem_write(&mut self, bytes: usize) {
        self.write += bytes as u64;
    }

    /// Threads per block of the device this context runs on.
    pub fn threads(&self) -> usize {
        self.cfg.threads_per_block
    }
}

impl Drop for BlockCtx<'_> {
    fn drop(&mut self) {
        self.stats
            .warp_steps
            .fetch_add(self.warp_steps, Ordering::Relaxed);
        self.stats
            .divergent_warps
            .fetch_add(self.divergent, Ordering::Relaxed);
        self.stats.gmem_read.fetch_add(self.read, Ordering::Relaxed);
        self.stats
            .gmem_write
            .fetch_add(self.write, Ordering::Relaxed);
    }
}

impl Device {
    /// A device with the given configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        Device {
            cfg,
            stats: DeviceStats::default(),
        }
    }

    /// Launch a kernel: one block per element of `inputs`; returns the
    /// per-block results in block order. Blocks run concurrently on the
    /// rayon pool and cannot observe each other — any such attempt would
    /// need shared state the API does not provide, mirroring the paper's
    /// "no means of synchronization or communication" between blocks.
    pub fn launch<I, T>(
        &self,
        inputs: Vec<I>,
        kernel: impl Fn(&mut BlockCtx, I) -> T + Sync,
    ) -> Vec<T>
    where
        I: Send,
        T: Send,
    {
        self.stats.kernel_launches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .blocks_executed
            .fetch_add(inputs.len() as u64, Ordering::Relaxed);
        inputs
            .into_par_iter()
            .enumerate()
            .map(|(block, input)| {
                let mut ctx = BlockCtx {
                    block,
                    cfg: self.cfg,
                    stats: &self.stats,
                    warp_steps: 0,
                    divergent: 0,
                    read: 0,
                    write: 0,
                };
                kernel(&mut ctx, input)
            })
            .collect()
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            kernel_launches: self.stats.kernel_launches.load(Ordering::Relaxed),
            blocks_executed: self.stats.blocks_executed.load(Ordering::Relaxed),
            warp_steps: self.stats.warp_steps.load(Ordering::Relaxed),
            divergent_warps: self.stats.divergent_warps.load(Ordering::Relaxed),
            gmem_read: self.stats.gmem_read.load(Ordering::Relaxed),
            gmem_write: self.stats.gmem_write.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_preserves_block_order() {
        let dev = Device::default();
        let out = dev.launch((0..64usize).collect(), |ctx, x| {
            assert_eq!(ctx.block, x);
            x * x
        });
        assert_eq!(out, (0..64usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_launches_and_blocks() {
        let dev = Device::default();
        dev.launch(vec![(); 10], |_, _| ());
        dev.launch(vec![(); 5], |_, _| ());
        let s = dev.stats();
        assert_eq!(s.kernel_launches, 2);
        assert_eq!(s.blocks_executed, 15);
    }

    #[test]
    fn simd_for_counts_warp_steps() {
        let dev = Device::new(DeviceConfig {
            threads_per_block: 64,
            warp_size: 8,
        });
        dev.launch(vec![()], |ctx, _| {
            // 20 items at warp 8 → ceil(20/8) = 3 steps.
            ctx.simd_for(20, |_| true);
        });
        assert_eq!(dev.stats().warp_steps, 3);
    }

    #[test]
    fn divergence_detected_only_on_mixed_warps() {
        let dev = Device::new(DeviceConfig {
            threads_per_block: 64,
            warp_size: 4,
        });
        dev.launch(vec![()], |ctx, _| {
            // Items 0..4 take branch A, 4..8 branch B: both warps uniform.
            ctx.simd_for(8, |i| i < 4);
        });
        assert_eq!(dev.stats().divergent_warps, 0);
        dev.launch(vec![()], |ctx, _| {
            // Alternating branches: every warp diverges.
            ctx.simd_for(8, |i| i % 2 == 0);
        });
        assert_eq!(dev.stats().divergent_warps, 2);
    }

    #[test]
    fn memory_traffic_accumulates_across_blocks() {
        let dev = Device::default();
        dev.launch(vec![(); 4], |ctx, _| {
            ctx.gmem_read(100);
            ctx.gmem_write(8);
        });
        let s = dev.stats();
        assert_eq!(s.gmem_read, 400);
        assert_eq!(s.gmem_write, 32);
    }

    #[test]
    fn empty_launch_is_fine() {
        let dev = Device::default();
        let out: Vec<u32> = dev.launch(Vec::<()>::new(), |_, _| 1);
        assert!(out.is_empty());
        assert_eq!(dev.stats().kernel_launches, 1);
        assert_eq!(dev.stats().blocks_executed, 0);
    }

    #[test]
    fn deterministic_under_parallel_scheduling() {
        // Same launch twice: identical results regardless of block order.
        let dev = Device::default();
        let mk = || {
            dev.launch((0..500u64).collect(), |ctx, x| {
                let mut acc = 0u64;
                ctx.simd_for(16, |i| {
                    acc = acc.wrapping_mul(31).wrapping_add(x + i as u64);
                    true
                });
                acc
            })
        };
        assert_eq!(mk(), mk());
    }
}
