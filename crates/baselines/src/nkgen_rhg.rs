//! NkGen-style RHG generation (von Looz et al. \[31\]).
//!
//! Query-centric like `Rhg`, but with the cost profile of the NetworKit
//! generator the paper measured: *live trigonometry* in every candidate
//! test (cosh/sinh/cos evaluated per comparison, no precomputation) and
//! binary searches over per-annulus θ-sorted point arrays (unstructured
//! memory access instead of cell-bucketed scans). Fig. 14's slowest
//! series.

use kagen_core::rhg::common::RhgInstance;
use rayon::prelude::*;

/// Plain polar point (no precomputed adjacency terms — that is the point).
#[derive(Clone, Copy)]
struct Pt {
    r: f64,
    theta: f64,
    id: u64,
}

/// Generate the full edge list of the instance with `threads` workers.
/// Returns canonical undirected edges.
pub fn nkgen_edges(inst: &RhgInstance, threads: usize) -> Vec<(u64, u64)> {
    // Materialize all annuli, θ-sorted (NkGen keeps points sorted per band).
    let annuli: Vec<Vec<Pt>> = (0..inst.num_annuli())
        .map(|i| {
            let mut v: Vec<Pt> = (0..inst.ann_cells[i])
                .flat_map(|c| inst.cell_points(i, c))
                .map(|p| Pt {
                    r: p.r,
                    theta: p.theta,
                    id: p.id,
                })
                .collect();
            v.sort_by(|a, b| a.theta.total_cmp(&b.theta));
            v
        })
        .collect();
    let r_max = inst.space.r_max;
    let tau = std::f64::consts::TAU;

    // Live-trig hyperbolic distance test (Eq. 4, no precomputation).
    let adjacent = |p: &Pt, q: &Pt| -> bool {
        let arg = p.r.cosh() * q.r.cosh() - p.r.sinh() * q.r.sinh() * (p.theta - q.theta).cos();
        arg.max(1.0).acosh() < r_max
    };

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .unwrap();

    let all: Vec<Pt> = annuli.iter().flatten().copied().collect();
    let edges: Vec<(u64, u64)> = pool.install(|| {
        all.par_iter()
            .map(|v| {
                let mut out = Vec::new();
                for (j, band) in annuli.iter().enumerate() {
                    if band.is_empty() {
                        continue;
                    }
                    // Live-trig angular bound (recomputed per query).
                    let b = inst.space.bounds[j].max(1e-12);
                    let dt = if v.r + b < r_max {
                        std::f64::consts::PI
                    } else {
                        ((v.r.cosh() * b.cosh() - r_max.cosh()) / (v.r.sinh() * b.sinh()))
                            .clamp(-1.0, 1.0)
                            .acos()
                    };
                    // Binary search the sorted band for the angular window.
                    let lo = v.theta - dt;
                    let hi = v.theta + dt;
                    let mut probe = |from: f64, to: f64| {
                        let start = band.partition_point(|p| p.theta < from);
                        for p in &band[start..] {
                            if p.theta > to {
                                break;
                            }
                            if p.id > v.id && adjacent(v, p) {
                                out.push((v.id, p.id));
                            }
                        }
                    };
                    if 2.0 * dt >= tau {
                        probe(0.0, tau);
                    } else {
                        if lo < 0.0 {
                            probe(lo + tau, tau);
                            probe(0.0, hi);
                        } else if hi > tau {
                            probe(lo, tau);
                            probe(0.0, hi - tau);
                        } else {
                            probe(lo, hi);
                        }
                    }
                }
                out
            })
            // kagen-lint: allow(f1) -- the reduce concatenates per-vertex edge Vecs
            // (no float arithmetic); the result is sorted + deduped before use
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            })
    });
    let mut edges = edges;
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_core::{generate_undirected, Rhg};

    #[test]
    fn matches_kagen_rhg() {
        // Same instance, same threshold model: identical edges.
        let gen = Rhg::new(600, 8.0, 2.8).with_seed(5).with_chunks(4);
        let kagen = generate_undirected(&gen);
        let nk = nkgen_edges(&gen.instance(), 2);
        assert_eq!(kagen.edges, nk);
    }

    #[test]
    fn thread_invariance() {
        let gen = Rhg::new(400, 6.0, 3.0).with_seed(9);
        let a = nkgen_edges(&gen.instance(), 1);
        let b = nkgen_edges(&gen.instance(), 4);
        assert_eq!(a, b);
    }
}
