//! `kagen-lint`: determinism & safety static analysis for this workspace.
//!
//! The paper's contract — every PE's output is a pure function of
//! `(seed, params, pe)` — is enforced at runtime by `cmp` matrices in CI,
//! but those only catch divergence after the bytes exist. This crate
//! catches the classic *sources* of divergence at the token level, before
//! anything runs: randomized-order collections on output paths (D1),
//! wall-clock/environment reads (D2), ad-hoc RNG seeding (D3), missing
//! `SAFETY:` documentation (S1), and order-dependent float reductions
//! inside parallel statements (F1). See [`rules`] for the rule text and
//! the pragma grammar, [`scan`] for what is in scope.
//!
//! No dependencies by design: the [`lexer`] is hand-rolled and handles
//! exactly the token forms that can hide or fake a match (comments with
//! nesting, raw strings with hash fences, char literals vs lifetimes).

pub mod lexer;
pub mod rules;
pub mod scan;

pub use rules::{lint_source, Rule, RuleSet, Violation};
pub use scan::{classify, lint_workspace, Report};
