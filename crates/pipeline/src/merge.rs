//! Bounded-memory external merge of shards into the instance's canonical
//! edge list.
//!
//! The in-RAM path (`kagen_graph::merge_pe_edges`) holds every per-PE
//! edge at once — exactly what the streaming pipeline exists to avoid.
//! This module replaces it with the classic external-memory pattern:
//!
//! 1. **Run formation** — stream the shards, buffering at most
//!    `budget_edges` edges; each full buffer is canonicalized (undirected
//!    edges re-oriented to `(min,max)`), split into one piece per worker,
//!    and the pieces are sorted, locally deduplicated and spilled as
//!    sorted *runs* in the compressed shard codec **in parallel** on the
//!    rayon thread pool (sorted runs delta-compress to a few bytes per
//!    edge). Parallel piece-sorting produces more, shorter runs than one
//!    big sort — the k-way merge absorbs them at one heap entry each.
//! 2. **K-way merge** — the runs are merged with a binary heap of one
//!    cursor per run; cross-PE duplicates of undirected edges become
//!    adjacent in the merged order and are dropped on the fly. The merge
//!    stays sequential (it is IO- and heap-bound); its output leaves
//!    through [`EdgeSink::push_batch`] in batches.
//!
//! Peak memory is `budget_edges` × 16 bytes plus one decoder per run,
//! independent of the instance's edge count. The output equals
//! `generate_undirected` / `generate_directed` edge-for-edge — run count
//! and thread count never change the merged stream.

use crate::reader::ShardReader;
use crate::sink::EdgeSink;
use kagen_graph::io::{CompressedEdgeReader, CompressedEdgeWriter};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::PathBuf;

/// Statistics of one external merge.
#[derive(Clone, Debug, Default)]
pub struct MergeStats {
    /// Sorted runs spilled to disk.
    pub runs: usize,
    /// Edges read from the shards (before dedup).
    pub edges_in: u64,
    /// Edges emitted (after dedup for undirected instances).
    pub edges_out: u64,
    /// High-water mark of the run buffer — never exceeds the budget.
    pub max_buffered: usize,
}

/// One run's read cursor during the k-way merge.
struct RunCursor {
    dec: CompressedEdgeReader<BufReader<File>>,
}

impl RunCursor {
    fn next(&mut self) -> io::Result<Option<(u64, u64)>> {
        self.dec.next_edge()
    }
}

/// Heap entry: min-heap by edge via reversed `Ord`.
struct HeapEntry {
    edge: (u64, u64),
    run: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.edge == other.edge && self.run == other.run
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest edge.
        other
            .edge
            .cmp(&self.edge)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// Minimum edges per parallel spill piece: below this, sorting is cheaper
/// than thread handoff and extra run files.
const MIN_PIECE_EDGES: usize = 1 << 15;

/// Remove adjacent duplicates from a sorted slice in place; returns the
/// deduplicated length (slice variant of `Vec::dedup`, needed because
/// spill pieces are borrowed sub-slices of the run buffer).
fn dedup_in_place(s: &mut [(u64, u64)]) -> usize {
    if s.is_empty() {
        return 0;
    }
    let mut w = 0;
    for r in 1..s.len() {
        if s[r] != s[w] {
            w += 1;
            s[w] = s[r];
        }
    }
    w + 1
}

/// Batch size of the merged output stream (edges per `push_batch`) —
/// the pipeline-wide batching granularity.
const OUT_BATCH_EDGES: usize = kagen_core::streaming::BATCH_EDGES;

/// The external merge driver.
pub struct ExternalMerge {
    budget_edges: usize,
    run_dir: PathBuf,
    threads: usize,
}

impl ExternalMerge {
    /// Merger buffering at most `budget_edges` edges in memory and
    /// spilling sorted runs into `run_dir` (created if missing, run
    /// files removed afterwards).
    pub fn new(run_dir: impl Into<PathBuf>, budget_edges: usize) -> ExternalMerge {
        ExternalMerge {
            budget_edges: budget_edges.max(1),
            run_dir: run_dir.into(),
            threads: 0,
        }
    }

    /// Bound the worker threads of parallel run formation
    /// (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> ExternalMerge {
        self.threads = threads;
        self
    }

    /// Worker count for a buffer of `len` edges.
    fn spill_workers(&self, len: usize) -> usize {
        let max = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        max.min(len.div_ceil(MIN_PIECE_EDGES)).max(1)
    }

    /// Sort the buffered edges and spill them as sorted runs: the buffer
    /// is split into one **in-place** piece per worker (disjoint
    /// `chunks_mut` slices — no copy, peak memory stays at the budget)
    /// and the pieces are sorted, deduplicated and encoded concurrently,
    /// each into its own run file.
    fn spill(
        &self,
        pool: &rayon::ThreadPool,
        buf: &mut Vec<(u64, u64)>,
        undirected: bool,
        runs: &mut Vec<PathBuf>,
    ) -> io::Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let workers = self.spill_workers(buf.len());
        let piece_len = buf.len().div_ceil(workers);
        let base = runs.len();
        let pieces: Vec<(PathBuf, &mut [(u64, u64)])> = buf
            .chunks_mut(piece_len)
            .enumerate()
            .map(|(i, piece)| {
                let path = self.run_dir.join(format!("run-{:05}.kgc", base + i));
                (path, piece)
            })
            .collect();
        let results: Vec<io::Result<PathBuf>> = pool.install(|| {
            use rayon::prelude::*;
            pieces
                .into_par_iter()
                .map(|(path, piece)| {
                    piece.sort_unstable();
                    let len = if undirected {
                        dedup_in_place(piece)
                    } else {
                        piece.len()
                    };
                    let mut enc =
                        CompressedEdgeWriter::new(BufWriter::new(File::create(&path)?), 0)?;
                    enc.push_slice(&piece[..len])?;
                    enc.finish()?;
                    Ok(path)
                })
                .collect()
        });
        for r in results {
            runs.push(r?);
        }
        buf.clear();
        Ok(())
    }

    /// Merge every shard of `reader` into `out`, deduplicating cross-PE
    /// duplicates when the manifest says the instance is undirected
    /// (directed instances keep multi-edges, matching
    /// `generate_directed`). Edges arrive at `out` in sorted order.
    /// `out.finish()` is left to the caller.
    pub fn merge(&self, reader: &ShardReader, out: &mut dyn EdgeSink) -> io::Result<MergeStats> {
        let undirected = !reader.manifest().directed;
        std::fs::create_dir_all(&self.run_dir)?;
        let mut stats = MergeStats::default();
        let mut runs: Vec<PathBuf> = Vec::new();
        // One pool for the whole merge — spills may fire many times.
        let pool = kagen_runtime::thread_pool(self.threads);

        // Phase 1: bounded buffer → sorted runs.
        {
            let mut buf: Vec<(u64, u64)> = Vec::with_capacity(self.budget_edges);
            let mut spill_err: Option<io::Error> = None;
            for shard in 0..reader.manifest().shards.len() {
                let budget = self.budget_edges;
                let mut on_edge = |u: u64, v: u64| {
                    if spill_err.is_some() {
                        return;
                    }
                    stats.edges_in += 1;
                    let e = if undirected && u > v { (v, u) } else { (u, v) };
                    buf.push(e);
                    stats.max_buffered = stats.max_buffered.max(buf.len());
                    if buf.len() >= budget {
                        if let Err(e) = self.spill(&pool, &mut buf, undirected, &mut runs) {
                            spill_err = Some(e);
                        }
                    }
                };
                reader.stream_shard(shard, &mut on_edge)?;
                if let Some(e) = spill_err.take() {
                    return Err(e);
                }
            }
            self.spill(&pool, &mut buf, undirected, &mut runs)?;
        }
        stats.runs = runs.len();

        // Phase 2: k-way merge with adjacent dedup.
        let mut cursors = Vec::with_capacity(runs.len());
        for path in &runs {
            cursors.push(RunCursor {
                dec: CompressedEdgeReader::new(BufReader::new(File::open(path)?))?,
            });
        }
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            if let Some(edge) = c.next()? {
                heap.push(HeapEntry { edge, run: i });
            }
        }
        let mut last: Option<(u64, u64)> = None;
        let mut out_batch: Vec<(u64, u64)> = Vec::with_capacity(OUT_BATCH_EDGES);
        while let Some(HeapEntry { edge, run }) = heap.pop() {
            if !(undirected && last == Some(edge)) {
                out_batch.push(edge);
                if out_batch.len() >= OUT_BATCH_EDGES {
                    out.push_batch(&out_batch);
                    stats.edges_out += out_batch.len() as u64;
                    out_batch.clear();
                }
                last = Some(edge);
            }
            if let Some(next) = cursors[run].next()? {
                heap.push(HeapEntry { edge: next, run });
            }
        }
        if !out_batch.is_empty() {
            out.push_batch(&out_batch);
            stats.edges_out += out_batch.len() as u64;
        }

        for path in runs {
            std::fs::remove_file(path).ok();
        }
        // Remove the run directory too if it is now empty (it may be a
        // pre-existing directory holding other files — leave those).
        std::fs::remove_dir(&self.run_dir).ok();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FnSink;
    use crate::writer::{write_sharded, InstanceMeta, ShardFormat, StreamConfig};
    use kagen_core::prelude::*;

    fn run_merge<G: kagen_core::streaming::StreamingGenerator>(
        gen: &G,
        model: &str,
        budget: usize,
        tag: &str,
    ) -> (Vec<(u64, u64)>, MergeStats) {
        let dir = std::env::temp_dir().join(format!("kagen_merge_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: model.into(),
            params: String::new(),
            seed: 1,
        };
        write_sharded(
            gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        let mut edges = Vec::new();
        let mut sink = FnSink::new(|u, v| edges.push((u, v)));
        let stats = ExternalMerge::new(dir.join("runs"), budget)
            .merge(&reader, &mut sink)
            .unwrap();
        sink.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (edges, stats)
    }

    #[test]
    fn undirected_equals_in_ram_merge() {
        let gen = GnmUndirected::new(250, 2000).with_seed(1).with_chunks(8);
        let expect = generate_undirected(&gen);
        for budget in [64usize, 1000, 1_000_000] {
            let (edges, stats) = run_merge(&gen, "gnm_undirected", budget, &format!("u{budget}"));
            assert_eq!(edges, expect.edges, "budget {budget}");
            assert_eq!(stats.edges_out, expect.edges.len() as u64);
            assert!(stats.max_buffered <= budget, "budget violated");
        }
    }

    #[test]
    fn directed_equals_in_ram_merge() {
        let gen = Rmat::new(8, 3000).with_seed(1).with_chunks(5);
        let expect = generate_directed(&gen);
        let (edges, stats) = run_merge(&gen, "rmat", 100, "d");
        // R-MAT may contain duplicate edges; they must all survive.
        assert_eq!(edges, expect.edges);
        assert_eq!(stats.edges_in, 3000);
    }

    #[test]
    fn tiny_budget_many_runs() {
        let gen = GnmUndirected::new(80, 500).with_seed(9).with_chunks(4);
        let expect = generate_undirected(&gen);
        let (edges, stats) = run_merge(&gen, "gnm_undirected", 16, "tiny");
        assert_eq!(edges, expect.edges);
        assert!(stats.runs > 10, "expected many runs, got {}", stats.runs);
    }

    #[test]
    fn parallel_run_formation_matches_sequential() {
        // Enough buffered edges (> MIN_PIECE_EDGES per worker) that the
        // spill actually splits into parallel pieces; the merged stream
        // must be identical to the single-threaded one and to the in-RAM
        // merge.
        let gen = GnmUndirected::new(2000, 120_000)
            .with_seed(4)
            .with_chunks(8);
        let expect = generate_undirected(&gen);
        let dir = std::env::temp_dir().join("kagen_merge_par");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_undirected".into(),
            params: String::new(),
            seed: 4,
        };
        write_sharded(
            &gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        let mut outputs = Vec::new();
        let mut run_counts = Vec::new();
        for threads in [1usize, 4] {
            let mut edges = Vec::new();
            let mut sink = FnSink::new(|u, v| edges.push((u, v)));
            let stats = ExternalMerge::new(dir.join("runs"), 1 << 20)
                .with_threads(threads)
                .merge(&reader, &mut sink)
                .unwrap();
            sink.finish().unwrap();
            assert_eq!(edges, expect.edges, "threads={threads}");
            run_counts.push(stats.runs);
            outputs.push(edges);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert!(
            run_counts[1] > run_counts[0],
            "4 workers must spill more, shorter runs ({run_counts:?})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_instance() {
        let gen = GnmUndirected::new(10, 0).with_seed(2).with_chunks(2);
        let (edges, stats) = run_merge(&gen, "gnm_undirected", 100, "empty");
        assert!(edges.is_empty());
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.edges_out, 0);
    }
}
