//! Device-side exclusive prefix sum.
//!
//! The §5.3 edge pipeline needs "the prefix sum of these counts \[to\]
//! provide both the total number of edges generated as well as offsets
//! into the edge array for each block". On a real GPU this is the classic
//! three-kernel blocked scan; the simulation runs the same structure:
//!
//! 1. **reduce** — one block per tile computes its tile's sum;
//! 2. **scan of sums** — a single block scans the (small) sum array;
//! 3. **downsweep** — one block per tile rewrites the tile as its local
//!    exclusive scan plus the tile offset.
//!
//! No inter-block communication happens inside any kernel; information
//! flows only through global memory between launches — exactly the
//! constraint the accelerator model imposes.

use crate::device::Device;

/// Exclusive prefix sum of `xs` on the device; returns `(offsets, total)`.
///
/// `offsets[i] = xs[0] + … + xs[i-1]`, `total = sum(xs)`.
pub fn exclusive_scan(dev: &Device, xs: &[u64]) -> (Vec<u64>, u64) {
    if xs.is_empty() {
        return (Vec::new(), 0);
    }
    let tile = dev.cfg.threads_per_block.max(1);

    // Kernel 1: per-tile reduction.
    let tiles: Vec<&[u64]> = xs.chunks(tile).collect();
    let sums: Vec<u64> = dev.launch(tiles, |ctx, t| {
        ctx.gmem_read(t.len() * 8);
        let mut s = 0u64;
        ctx.simd_for(t.len(), |i| {
            s += t[i];
            true
        });
        s
    });

    // Kernel 2: single-block scan of the tile sums (they are few).
    let tile_offsets: Vec<u64> = dev
        .launch(vec![sums], |ctx, sums| {
            ctx.gmem_read(sums.len() * 8);
            ctx.gmem_write(sums.len() * 8);
            let mut acc = 0u64;
            let mut out = Vec::with_capacity(sums.len());
            ctx.simd_for(sums.len(), |i| {
                out.push(acc);
                acc += sums[i];
                true
            });
            (out, acc)
        })
        .pop()
        .map(|(offsets, total)| {
            // Total travels through "global memory" to the host.
            let mut v = offsets;
            v.push(total);
            v
        })
        .unwrap();
    let total = *tile_offsets.last().unwrap();

    // Kernel 3: per-tile downsweep.
    let tiles: Vec<(usize, &[u64])> = xs.chunks(tile).enumerate().collect();
    let scanned: Vec<Vec<u64>> = dev.launch(tiles, |ctx, (t_idx, t)| {
        ctx.gmem_read(t.len() * 8 + 8);
        ctx.gmem_write(t.len() * 8);
        let mut acc = tile_offsets[t_idx];
        let mut out = Vec::with_capacity(t.len());
        ctx.simd_for(t.len(), |i| {
            out.push(acc);
            acc += t[i];
            true
        });
        out
    });

    (scanned.concat(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn reference(xs: &[u64]) -> (Vec<u64>, u64) {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn matches_reference_across_sizes() {
        let dev = Device::new(DeviceConfig {
            threads_per_block: 8,
            warp_size: 4,
        });
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let xs: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 97).collect();
            assert_eq!(exclusive_scan(&dev, &xs), reference(&xs), "n={n}");
        }
    }

    #[test]
    fn total_equals_sum() {
        let dev = Device::default();
        let xs: Vec<u64> = (0..5000u64).collect();
        let (_, total) = exclusive_scan(&dev, &xs);
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn three_kernel_structure() {
        let dev = Device::default();
        let xs = vec![1u64; 10_000];
        exclusive_scan(&dev, &xs);
        let s = dev.stats();
        assert_eq!(s.kernel_launches, 3, "reduce + scan-of-sums + downsweep");
        // Tiles in kernels 1 and 3 plus the single block of kernel 2.
        let tiles = xs.len().div_ceil(dev.cfg.threads_per_block) as u64;
        assert_eq!(s.blocks_executed, 2 * tiles + 1);
    }

    #[test]
    fn zero_heavy_input() {
        let dev = Device::default();
        let xs = vec![0u64, 0, 5, 0, 0, 3, 0];
        let (offs, total) = exclusive_scan(&dev, &xs);
        assert_eq!(offs, vec![0, 0, 0, 5, 5, 5, 8]);
        assert_eq!(total, 8);
    }

    proptest::proptest! {
        #[test]
        fn scan_invariants(xs in proptest::collection::vec(0u64..1000, 0..300)) {
            let dev = Device::new(DeviceConfig { threads_per_block: 16, warp_size: 8 });
            let (offs, total) = exclusive_scan(&dev, &xs);
            let (r_offs, r_total) = reference(&xs);
            proptest::prop_assert_eq!(offs, r_offs);
            proptest::prop_assert_eq!(total, r_total);
        }
    }
}
