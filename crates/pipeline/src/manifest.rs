//! The shard-directory manifest: a JSON file describing one sharded
//! generation run (model, parameters, seed, format, per-shard edge counts
//! and checksums) so shards can be validated and reassembled later —
//! including by tools that never saw the generator.
//!
//! Multi-process runs (`kagen_cluster`) split the PE range across worker
//! processes; each worker records its slice as a [`PartialManifest`]
//! (`part-<a>-<b>.json`) and the coordinator *federates* the parts into
//! the final `manifest.json` with [`RunHeader::federate`] — byte-identical
//! to what a single-process [`crate::write_sharded`] run would have
//! written, because every field is a pure function of `(model, params,
//! seed, format)` plus the per-shard infos.
//!
//! Serialization is hand-rolled (the build environment vendors no serde):
//! [`Manifest::to_json`] emits canonical JSON and [`Manifest::from_json`]
//! parses the subset of JSON that `to_json` produces (objects, arrays,
//! strings with escapes, unsigned integers, booleans). The parser lives
//! in the public [`json`] module so sibling crates (the cluster ledger)
//! can reuse it.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// File name of the manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One shard's metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// The PE (chunk) index this shard holds.
    pub pe: u64,
    /// File name relative to the shard directory.
    pub file: String,
    /// Number of edges in the shard.
    pub edges: u64,
    /// Order-dependent checksum of the shard's edge stream
    /// (see `kagen_pipeline::sink::checksum_step`).
    pub checksum: u64,
}

impl ShardInfo {
    /// Serialize as a single-line JSON object (the form every manifest
    /// flavor and the cluster ledger embed).
    pub fn to_json_inline(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"pe\": {}, \"file\": ", self.pe);
        push_str_value(&mut s, &self.file);
        let _ = write!(
            s,
            ", \"edges\": {}, \"checksum\": {}}}",
            self.edges, self.checksum
        );
        s
    }

    /// Parse from a JSON value (inverse of [`ShardInfo::to_json_inline`]).
    pub fn from_json_value(value: &json::Value, what: &str) -> Result<ShardInfo, String> {
        let obj = value.as_obj(what)?;
        Ok(ShardInfo {
            pe: obj.get("pe")?.as_u64("pe")?,
            file: obj.get("file")?.as_str("file")?.to_string(),
            edges: obj.get("edges")?.as_u64("edges")?,
            checksum: obj.get("checksum")?.as_u64("checksum")?,
        })
    }
}

/// The run-identity fields of a [`Manifest`] — everything known *before*
/// any shard is written. A multi-worker coordinator carries a header
/// through the run and [federates](RunHeader::federate) it with the
/// collected per-shard infos at the end; the single-process writer uses
/// the same constructor, so both paths produce identical manifests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunHeader {
    /// Model name (e.g. `rmat`, `gnm_undirected`).
    pub model: String,
    /// Human-readable parameter string.
    pub params: String,
    /// Instance seed.
    pub seed: u64,
    /// Vertex count.
    pub n: u64,
    /// Whether the edges are directed.
    pub directed: bool,
    /// Number of logical PEs == number of shards.
    pub chunks: u64,
    /// Shard format name (`edge-list`, `binary`, `compressed`).
    pub format: String,
}

impl RunHeader {
    /// Combine the header with per-shard infos into the final manifest.
    ///
    /// The shards may arrive in any order (workers finish when they
    /// finish); they are sorted by PE and verified to cover exactly
    /// `0..chunks`, each PE once — a gap, duplicate or out-of-range shard
    /// is an error, not a silently wrong manifest.
    pub fn federate(self, mut shards: Vec<ShardInfo>) -> Result<Manifest, String> {
        shards.sort_by_key(|s| s.pe);
        if shards.len() as u64 != self.chunks {
            return Err(format!(
                "federation: {} shards for {} chunks",
                shards.len(),
                self.chunks
            ));
        }
        for (i, s) in shards.iter().enumerate() {
            if s.pe != i as u64 {
                return Err(format!(
                    "federation: expected shard for PE {i}, found PE {} (gap or duplicate)",
                    s.pe
                ));
            }
        }
        let edges = shards.iter().map(|s| s.edges).sum();
        Ok(Manifest {
            model: self.model,
            params: self.params,
            seed: self.seed,
            n: self.n,
            directed: self.directed,
            chunks: self.chunks,
            format: self.format,
            edges,
            shards,
        })
    }

    /// Parse the header fields out of a JSON object that embeds them
    /// (a manifest or a cluster ledger).
    pub fn from_json_obj(obj: &json::Obj<'_>) -> Result<RunHeader, String> {
        Ok(RunHeader {
            model: obj.get("model")?.as_str("model")?.to_string(),
            params: obj.get("params")?.as_str("params")?.to_string(),
            seed: obj.get("seed")?.as_u64("seed")?,
            n: obj.get("n")?.as_u64("n")?,
            directed: obj.get("directed")?.as_bool("directed")?,
            chunks: obj.get("chunks")?.as_u64("chunks")?,
            format: obj.get("format")?.as_str("format")?.to_string(),
        })
    }

    /// Append the header fields to a JSON object body, one per line at
    /// two-space indentation, each line ending in `,` (callers append
    /// their own fields after).
    pub fn push_json_fields(&self, s: &mut String) {
        let _ = write!(s, "  \"model\": ");
        push_str_value(s, &self.model);
        let _ = write!(s, ",\n  \"params\": ");
        push_str_value(s, &self.params);
        let _ = write!(s, ",\n  \"seed\": {},", self.seed);
        let _ = write!(s, "\n  \"n\": {},", self.n);
        let _ = write!(s, "\n  \"directed\": {},", self.directed);
        let _ = write!(s, "\n  \"chunks\": {},", self.chunks);
        let _ = write!(s, "\n  \"format\": ");
        push_str_value(s, &self.format);
        s.push_str(",\n");
    }
}

/// Metadata of a complete sharded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Model name (e.g. `rmat`, `gnm_undirected`).
    pub model: String,
    /// Human-readable parameter string (e.g. `n=1048576 m=16777216`).
    pub params: String,
    /// Instance seed.
    pub seed: u64,
    /// Vertex count.
    pub n: u64,
    /// Whether the edges are directed.
    pub directed: bool,
    /// Number of logical PEs == number of shards.
    pub chunks: u64,
    /// Shard format name (`edge-list`, `binary`, `compressed`).
    pub format: String,
    /// Total edge count over all shards.
    pub edges: u64,
    /// Per-shard metadata, in PE order.
    pub shards: Vec<ShardInfo>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialize a shard list as an indented JSON array under key `name`,
/// closing bracket included but no trailing newline or comma.
fn push_shards_field(s: &mut String, name: &str, shards: &[ShardInfo]) {
    let _ = writeln!(s, "  \"{name}\": [");
    for (i, sh) in shards.iter().enumerate() {
        let _ = write!(
            s,
            "    {}{}",
            sh.to_json_inline(),
            if i + 1 < shards.len() { ",\n" } else { "\n" }
        );
    }
    s.push_str("  ]");
}

fn parse_shards_field(obj: &json::Obj<'_>, name: &str) -> Result<Vec<ShardInfo>, String> {
    let mut shards = Vec::new();
    for (i, sh) in obj.get(name)?.as_arr(name)?.iter().enumerate() {
        shards.push(ShardInfo::from_json_value(sh, &format!("{name}[{i}]"))?);
    }
    Ok(shards)
}

impl Manifest {
    /// The run-identity fields, for comparing against a ledger or a
    /// resumed run's parameters.
    pub fn header(&self) -> RunHeader {
        RunHeader {
            model: self.model.clone(),
            params: self.params.clone(),
            seed: self.seed,
            n: self.n,
            directed: self.directed,
            chunks: self.chunks,
            format: self.format.clone(),
        }
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        self.header().push_json_fields(&mut s);
        let _ = writeln!(s, "  \"edges\": {},", self.edges);
        push_shards_field(&mut s, "shards", &self.shards);
        s.push_str("\n}\n");
        s
    }

    /// Parse from JSON (inverse of [`Manifest::to_json`]).
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj("manifest")?;
        let header = RunHeader::from_json_obj(&obj)?;
        Ok(Manifest {
            model: header.model,
            params: header.params,
            seed: header.seed,
            n: header.n,
            directed: header.directed,
            chunks: header.chunks,
            format: header.format,
            edges: obj.get("edges")?.as_u64("edges")?,
            shards: parse_shards_field(&obj, "shards")?,
        })
    }

    /// Write `manifest.json` into `dir`.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::write(dir.join(MANIFEST_FILE), self.to_json())
    }

    /// Load `manifest.json` from `dir`.
    pub fn load(dir: &Path) -> io::Result<Manifest> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        Manifest::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// One worker's slice of a multi-process run: the shards it wrote for
/// its contiguous PE range `pe_begin..pe_end`. Workers persist this as
/// `part-<a>-<b>.json` in the shard directory; the coordinator collects
/// the parts, validates them, and federates the final [`Manifest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialManifest {
    /// First PE of the worker's range.
    pub pe_begin: u64,
    /// One past the last PE of the worker's range.
    pub pe_end: u64,
    /// Shard infos for exactly the PEs in `pe_begin..pe_end`, in order.
    pub shards: Vec<ShardInfo>,
}

impl PartialManifest {
    /// File name a worker for `pe_begin..pe_end` writes — unique per
    /// task because task ranges never overlap within one run.
    pub fn file_name(pe_begin: u64, pe_end: u64) -> String {
        format!("part-{pe_begin:05}-{pe_end:05}.json")
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"pe_begin\": {},", self.pe_begin);
        let _ = writeln!(s, "  \"pe_end\": {},", self.pe_end);
        push_shards_field(&mut s, "shards", &self.shards);
        s.push_str("\n}\n");
        s
    }

    /// Parse from JSON (inverse of [`PartialManifest::to_json`]).
    pub fn from_json(text: &str) -> Result<PartialManifest, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj("partial manifest")?;
        let part = PartialManifest {
            pe_begin: obj.get("pe_begin")?.as_u64("pe_begin")?,
            pe_end: obj.get("pe_end")?.as_u64("pe_end")?,
            shards: parse_shards_field(&obj, "shards")?,
        };
        // Compare without materializing the range — the file is
        // untrusted input, and a corrupt `pe_end` must come back as a
        // parse error, not an absurd allocation.
        let count_ok = part.pe_end.checked_sub(part.pe_begin) == Some(part.shards.len() as u64);
        let pes_ok = part
            .shards
            .iter()
            .zip(part.pe_begin..)
            .all(|(s, pe)| s.pe == pe);
        if !count_ok || !pes_ok {
            let got: Vec<u64> = part.shards.iter().map(|s| s.pe).collect();
            return Err(format!(
                "partial manifest {}..{} covers PEs {got:?}",
                part.pe_begin, part.pe_end
            ));
        }
        Ok(part)
    }

    /// Write `part-<a>-<b>.json` into `dir`; returns the path.
    pub fn save(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let path = dir.join(Self::file_name(self.pe_begin, self.pe_end));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Load and validate a worker's partial manifest from `dir`.
    pub fn load(dir: &Path, pe_begin: u64, pe_end: u64) -> io::Result<PartialManifest> {
        let text = std::fs::read_to_string(dir.join(Self::file_name(pe_begin, pe_end)))?;
        PartialManifest::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Append `s` as a JSON string literal (quotes and escapes included) —
/// the one escaper every manifest flavor and the cluster ledger share.
pub fn push_str_value(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

pub mod json {
    //! Minimal JSON parser for the manifest subset (objects, arrays,
    //! strings with escapes, unsigned integers, booleans) — public so
    //! the cluster ledger and other sibling metadata files reuse one
    //! parser instead of growing their own.

    /// A parsed JSON value.
    #[derive(Clone, Debug)]
    pub enum Value {
        /// Object as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
        /// Array.
        Arr(Vec<Value>),
        /// String.
        Str(String),
        /// Unsigned integer (all numbers the manifest emits).
        Num(u64),
        /// Boolean.
        Bool(bool),
    }

    /// Accessor helpers for the typed object view.
    #[derive(Debug)]
    pub struct Obj<'a>(&'a [(String, Value)]);

    impl<'a> Obj<'a> {
        /// Look up a required key.
        pub fn get(&self, key: &str) -> Result<&'a Value, String> {
            self.0
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("manifest: missing key '{key}'"))
        }
    }

    impl Value {
        /// View as object.
        pub fn as_obj(&self, what: &str) -> Result<Obj<'_>, String> {
            match self {
                Value::Obj(fields) => Ok(Obj(fields)),
                _ => Err(format!("manifest: {what} is not an object")),
            }
        }

        /// View as array.
        pub fn as_arr(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(format!("manifest: {what} is not an array")),
            }
        }

        /// View as string.
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("manifest: {what} is not a string")),
            }
        }

        /// View as unsigned integer.
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Num(x) => Ok(*x),
                _ => Err(format!("manifest: {what} is not an integer")),
            }
        }

        /// View as boolean.
        pub fn as_bool(&self, what: &str) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err(format!("manifest: {what} is not a boolean")),
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' | b'f' => self.boolean(),
                b'0'..=b'9' => self.number(),
                c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                fields.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err("unterminated string".to_string());
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err("unterminated escape".to_string());
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                self.pos += 4;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            }
                            c => return Err(format!("bad escape '\\{}'", c as char)),
                        }
                    }
                    b => {
                        // Re-assemble UTF-8 multibyte sequences verbatim.
                        let start = self.pos - 1;
                        let len = match b {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let slice = self
                            .bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                        self.pos = start + len;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(format!("expected number at byte {start}"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .unwrap()
                .parse::<u64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number: {e}"))
        }

        fn boolean(&mut self) -> Result<Value, String> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"true") {
                self.pos += 4;
                Ok(Value::Bool(true))
            } else if self.bytes[self.pos..].starts_with(b"false") {
                self.pos += 5;
                Ok(Value::Bool(false))
            } else {
                Err(format!("expected boolean at byte {}", self.pos))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            model: "rmat".to_string(),
            params: "n=1024 m=4096".to_string(),
            seed: 42,
            n: 1024,
            directed: true,
            chunks: 2,
            format: "compressed".to_string(),
            edges: 4096,
            shards: vec![
                ShardInfo {
                    pe: 0,
                    file: "shard-00000.kgc".to_string(),
                    edges: 2048,
                    checksum: 0xdeadbeef,
                },
                ShardInfo {
                    pe: 1,
                    file: "shard-00001.kgc".to_string(),
                    edges: 2048,
                    checksum: 0xfeedface,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let text = m.to_json();
        let back = Manifest::from_json(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn escapes_roundtrip() {
        let mut m = sample();
        m.params = "weird \"quoted\" \\ tab\there\nnewline".to_string();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.params, m.params);
    }

    #[test]
    fn empty_shard_list() {
        let mut m = sample();
        m.shards.clear();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert!(back.shards.is_empty());
    }

    #[test]
    fn missing_key_is_an_error() {
        let err = Manifest::from_json("{\"model\": \"x\"}").unwrap_err();
        assert!(err.contains("missing key"), "{err}");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Manifest::from_json("{").is_err());
        assert!(Manifest::from_json("[1, 2").is_err());
        assert!(Manifest::from_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn federate_accepts_out_of_order_parts_and_matches_direct_build() {
        let m = sample();
        let mut shards = m.shards.clone();
        shards.reverse(); // workers finish in any order
        let federated = m.header().federate(shards).unwrap();
        assert_eq!(federated, m);
        assert_eq!(federated.to_json(), m.to_json());
    }

    #[test]
    fn federate_rejects_gaps_duplicates_and_wrong_counts() {
        let m = sample();
        // Missing shard.
        let err = m.header().federate(m.shards[..1].to_vec()).unwrap_err();
        assert!(err.contains("1 shards for 2 chunks"), "{err}");
        // Duplicate PE.
        let dup = vec![m.shards[0].clone(), m.shards[0].clone()];
        let err = m.header().federate(dup).unwrap_err();
        assert!(err.contains("gap or duplicate"), "{err}");
        // Out-of-range PE.
        let mut wild = m.shards.clone();
        wild[1].pe = 7;
        let err = m.header().federate(wild).unwrap_err();
        assert!(err.contains("gap or duplicate"), "{err}");
    }

    #[test]
    fn partial_manifest_roundtrip() {
        let m = sample();
        let part = PartialManifest {
            pe_begin: 0,
            pe_end: 2,
            shards: m.shards.clone(),
        };
        let back = PartialManifest::from_json(&part.to_json()).unwrap();
        assert_eq!(back, part);

        let dir = std::env::temp_dir().join("kagen_partial_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = part.save(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "part-00000-00002.json");
        let loaded = PartialManifest::load(&dir, 0, 2).unwrap();
        assert_eq!(loaded, part);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_manifest_rejects_range_mismatch() {
        let m = sample();
        let part = PartialManifest {
            pe_begin: 3,
            pe_end: 5, // but the shards are PEs 0 and 1
            shards: m.shards.clone(),
        };
        let err = PartialManifest::from_json(&part.to_json()).unwrap_err();
        assert!(err.contains("covers PEs"), "{err}");
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("kagen_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
