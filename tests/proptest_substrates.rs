//! Property-based tests for the substrate crates: geometry, graph data
//! structures, seed derivation and the simulated GPGPU backends. These
//! complement `proptest_invariants.rs` (which targets the samplers and
//! generators) by pinning the invariants every generator builds on.

use kagen_repro::core::er::{
    directed_edge_to_index, directed_index_to_edge, triangle_index_to_pair,
};
use kagen_repro::core::prelude::*;
use kagen_repro::geometry::{morton, CellGrid, CountTree};
use kagen_repro::gpgpu::{exclusive_scan, Device, GpuGnmDirected, GpuRgg2d};
use kagen_repro::graph::components::connected_components;
use kagen_repro::graph::{bfs_distances, merge_pe_edges, Csr, EdgeList};
use kagen_repro::util::seed::{stream, SeedTree};
use kagen_repro::util::{derive_seed, Mt64, Rng64};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn morton2_roundtrip(x in 0u64..(1 << 24), y in 0u64..(1 << 24)) {
        let code = morton::encode2(x, y);
        prop_assert_eq!(morton::decode2(code), (x, y));
        prop_assert_eq!(morton::decode::<2>(code), [x, y]);
    }

    #[test]
    fn morton3_roundtrip(x in 0u64..(1 << 16), y in 0u64..(1 << 16), z in 0u64..(1 << 16)) {
        let code = morton::encode3(x, y, z);
        prop_assert_eq!(morton::decode3(code), (x, y, z));
        prop_assert_eq!(morton::encode::<3>([x, y, z]), code);
    }

    #[test]
    fn morton_preserves_locality_order_within_quadrant(
        x in 0u64..(1 << 10),
        y in 0u64..(1 << 10),
    ) {
        // Z-order invariant: the code of a point is at least the code of
        // the quadrant corner below it.
        let code = morton::encode2(x, y);
        let corner = morton::encode2(x & !1, y & !1);
        prop_assert!(code >= corner);
        prop_assert!(code - corner <= 3);
    }

    #[test]
    fn directed_index_edge_roundtrip(n in 2u64..5000, frac in 0.0f64..1.0) {
        let universe = (n as u128) * (n as u128 - 1);
        let idx = ((universe as f64) * frac) as u128;
        let idx = idx.min(universe - 1);
        let (u, v) = directed_index_to_edge(n, idx);
        prop_assert!(u < n && v < n && u != v);
        prop_assert_eq!(directed_edge_to_index(n, u, v), idx);
    }

    #[test]
    fn triangle_index_roundtrip(t in 0u128..(1u128 << 80)) {
        let (u, v) = triangle_index_to_pair(t);
        prop_assert!(v < u);
        let below = (u as u128) * (u as u128 - 1) / 2;
        prop_assert_eq!(below + v as u128, t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cell_grid_point_location_consistent(
        levels in 1u32..8,
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
    ) {
        let grid: CellGrid<2> = CellGrid::new(levels);
        let coords = grid.cell_of(&[x, y]);
        let (lo, hi) = grid.cell_bounds(coords);
        prop_assert!(x >= lo[0] && x < hi[0] + 1e-15);
        prop_assert!(y >= lo[1] && y < hi[1] + 1e-15);
        // Morton code round-trips through coords.
        let code = grid.morton_of(coords);
        prop_assert_eq!(grid.coords_of(code), coords);
        prop_assert!(code < grid.num_cells());
    }

    #[test]
    fn cell_grid_neighbor_counts(levels in 1u32..6, cx in 0u64..32, cy in 0u64..32) {
        let grid: CellGrid<2> = CellGrid::new(levels);
        let g = grid.cells_per_dim();
        let coords = [cx % g, cy % g];
        let mut wrapped = 0;
        grid.for_neighbors(coords, true, &mut |_, _| wrapped += 1);
        prop_assert_eq!(wrapped, 9, "torus neighborhoods are always 3^2");
        let mut clipped = Vec::new();
        grid.for_neighbors(coords, false, &mut |n, _| clipped.push(n));
        for n in &clipped {
            prop_assert!(n[0] < g && n[1] < g);
        }
        prop_assert!(clipped.len() <= 9);
        let interior = coords.iter().all(|&c| c > 0 && c + 1 < g);
        if interior {
            prop_assert_eq!(clipped.len(), 9);
        }
    }

    #[test]
    fn count_tree_conserves_and_prefixes(
        levels in 1u32..6,
        total in 0u64..5000,
        seed in any::<u64>(),
    ) {
        let tree = CountTree::<2>::new(seed, total, levels);
        let leaves = tree.num_leaves();
        let mut sum = 0u64;
        let mut running = 0u64;
        for leaf in 0..leaves {
            prop_assert_eq!(tree.prefix_before(leaf), running, "prefix at {}", leaf);
            let c = tree.leaf_count(leaf);
            running += c;
            sum += c;
        }
        prop_assert_eq!(sum, total);
        // Range visitor agrees with per-leaf queries.
        let mut via_range = 0u64;
        tree.for_leaf_counts(0, leaves, &mut |_, c| via_range += c);
        prop_assert_eq!(via_range, total);
    }

    #[test]
    fn seed_tree_children_deterministic_and_distinct(
        base in any::<u64>(),
        arity in 2u64..5,
    ) {
        let root = SeedTree::root(base, stream::SPLIT, arity);
        let mut seeds = std::collections::HashSet::new();
        for i in 0..arity {
            let c = root.child(i);
            // Recomputing the child gives the identical seed.
            prop_assert_eq!(c.seed(), root.child(i).seed());
            seeds.insert(c.seed());
        }
        // Children are pairwise distinct (hash collisions are 2^-64).
        prop_assert_eq!(seeds.len() as u64, arity);
    }

    #[test]
    fn derive_seed_order_sensitive(a in any::<u64>(), b in any::<u64>(), s in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(s, &[a, b]), derive_seed(s, &[b, a]));
        prop_assert_eq!(derive_seed(s, &[a, b]), derive_seed(s, &[a, b]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csr_agrees_with_edge_list(
        n in 1u64..200,
        edges in proptest::collection::vec((0u64..200, 0u64..200), 0..400),
    ) {
        let edges: Vec<(u64, u64)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .filter(|&(u, v)| u != v)
            .collect();
        let mut el = EdgeList::new(n, edges);
        el.canonicalize();
        let csr = Csr::undirected(&el);
        prop_assert_eq!(csr.n() as u64, n);
        prop_assert_eq!(csr.arcs(), el.edges.len() * 2);
        for &(u, v) in &el.edges {
            prop_assert!(csr.has_edge(u, v));
            prop_assert!(csr.has_edge(v, u));
        }
        let degrees = el.degrees_undirected();
        for v in 0..n {
            prop_assert_eq!(csr.degree(v) as u64, degrees[v as usize]);
        }
    }

    #[test]
    fn merge_pe_edges_canonicalizes_any_split(
        n in 2u64..100,
        edges in proptest::collection::vec((0u64..100, 0u64..100), 1..200),
        parts in 1usize..6,
        seed in any::<u64>(),
    ) {
        let edges: Vec<(u64, u64)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .filter(|&(u, v)| u != v)
            .collect();
        prop_assume!(!edges.is_empty());
        // Ground truth: merge as one part.
        let whole = merge_pe_edges(n, vec![edges.clone()]);
        // Split randomly into parts, duplicating some edges across parts
        // (as redundant recomputation does), flipping some orientations.
        let mut rng = Mt64::new(seed);
        let mut split: Vec<Vec<(u64, u64)>> = vec![Vec::new(); parts];
        for &(u, v) in &edges {
            let k = (rng.next_u64() as usize) % parts;
            split[k].push((u, v));
            if rng.next_u64().is_multiple_of(3) {
                let k2 = (rng.next_u64() as usize) % parts;
                split[k2].push((v, u)); // duplicate, reversed
            }
        }
        let merged = merge_pe_edges(n, split);
        prop_assert_eq!(whole, merged);
    }

    #[test]
    fn bfs_distances_on_a_path(n in 2u64..300, source_frac in 0.0f64..1.0) {
        let edges: Vec<(u64, u64)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let el = EdgeList::new(n, edges);
        let csr = Csr::undirected(&el);
        let s = ((n - 1) as f64 * source_frac) as u64;
        let dist = bfs_distances(&csr, s);
        for v in 0..n {
            prop_assert_eq!(dist[v as usize] as u64, v.abs_diff(s));
        }
        let mut uf = connected_components(&el);
        prop_assert_eq!(uf.component_count(), 1);
        prop_assert_eq!(uf.largest_component(), n as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gpu_scan_matches_reference(
        xs in proptest::collection::vec(0u64..10_000, 0..500),
        tpb in 1usize..64,
    ) {
        let dev = Device::new(kagen_repro::gpgpu::DeviceConfig {
            threads_per_block: tpb,
            warp_size: 8,
        });
        let (offs, total) = exclusive_scan(&dev, &xs);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(offs[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn gpu_er_equals_cpu_er(
        n in 2u64..150,
        m_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let universe = n * (n - 1);
        let m = ((universe as f64) * m_frac) as u64;
        let dev = Device::default();
        let mut gpu = GpuGnmDirected::new(n, m).with_seed(seed).generate(&dev);
        gpu.sort_unstable();
        let cpu = generate_directed(&GnmDirected::new(n, m).with_seed(seed));
        prop_assert_eq!(gpu, cpu.edges);
    }

    #[test]
    fn gpu_rgg_equals_cpu_rgg(
        n in 2u64..200,
        r in 0.02f64..0.4,
        seed in any::<u64>(),
    ) {
        let dev = Device::default();
        let gpu = GpuRgg2d::new(n, r).with_seed(seed).generate(&dev);
        let cpu = generate_undirected(&Rgg2d::new(n, r).with_seed(seed));
        prop_assert_eq!(gpu, cpu.edges);
    }

    #[test]
    fn soft_rhg_chunk_invariance(
        n in 50u64..250,
        temp in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let mk = |chunks| {
            generate_undirected(
                &SoftRhg::new(n, 6.0, 2.8, temp).with_seed(seed).with_chunks(chunks),
            )
        };
        let a = mk(1);
        prop_assert_eq!(&a, &mk(5));
        prop_assert_eq!(&a, &mk(16));
    }
}
