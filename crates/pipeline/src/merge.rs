//! Bounded-memory external merge of shards into the instance's canonical
//! edge list.
//!
//! The in-RAM path (`kagen_graph::merge_pe_edges`) holds every per-PE
//! edge at once — exactly what the streaming pipeline exists to avoid.
//! This module replaces it with the classic external-memory pattern:
//!
//! 1. **Run formation with shard-level parallel reading** — the shard
//!    list is split into one contiguous group per reader worker; every
//!    worker concurrently streams *its own shards* (decode, checksum
//!    validation and canonicalization all run in parallel), buffering at
//!    most `budget_edges / workers` edges. Each full local buffer is
//!    canonicalized (undirected edges re-oriented to `(min,max)`),
//!    sorted, locally deduplicated and spilled as sorted *runs* in the
//!    compressed shard codec (sorted runs delta-compress to a few bytes
//!    per edge). With enough threads this is one reader per shard; when
//!    there are fewer shards than threads, the leftover threads sort
//!    each spill as concurrent in-place pieces instead.
//! 2. **K-way merge tree with bounded fan-in** — runs are merged with a
//!    binary heap of one cursor per run, at most [`DEFAULT_FAN_IN`]
//!    (configurable) runs at a time: while more runs exist than the
//!    fan-in cap, contiguous groups are merged into intermediate runs,
//!    then the surviving runs merge into the sink. Cross-PE duplicates
//!    of undirected edges become adjacent in the merged order and are
//!    dropped on the fly (at every pass — dedup of a sorted stream is
//!    idempotent). The merge stays sequential (it is IO- and
//!    heap-bound); its output leaves through [`EdgeSink::push_batch`]
//!    in batches.
//!
//! Peak memory is `budget_edges` × 16 bytes plus at most `fan_in`
//! decoders (plus one writer during an intermediate pass), independent
//! of the instance's edge count — without the fan-in cap, a large
//! instance under a small budget could open
//! thousands of run files at once and trip the process fd limit, and
//! the per-decoder buffers would silently breach the documented
//! `budget × 16 B` contract. The output equals `generate_undirected` /
//! `generate_directed` edge-for-edge — every pass of the merge tree
//! yields a sorted stream with ties broken by original run order, so
//! run count, thread count and fan-in never change the merged stream.

use crate::reader::ShardReader;
use crate::sink::EdgeSink;
use kagen_graph::io::{CompressedEdgeReader, CompressedEdgeWriter};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// What one reader worker brings back from run formation.
struct ReaderReport {
    /// Spilled run files, in spill order.
    runs: Vec<PathBuf>,
    /// Edges this worker read from its shards.
    edges_in: u64,
    /// High-water mark of the worker's local buffer.
    max_buffered: usize,
}

/// Statistics of one external merge.
#[derive(Clone, Debug, Default)]
pub struct MergeStats {
    /// Sorted runs spilled to disk.
    pub runs: usize,
    /// Edges read from the shards (before dedup).
    pub edges_in: u64,
    /// Edges emitted (after dedup for undirected instances).
    pub edges_out: u64,
    /// High-water mark of the run buffer — never exceeds the budget.
    pub max_buffered: usize,
    /// Intermediate merge-tree passes run before the final merge (0
    /// when every run fits under the fan-in cap at once).
    pub merge_passes: usize,
    /// Most run files open *for reading* simultaneously during the
    /// merge — never exceeds the fan-in cap. (An intermediate pass
    /// additionally holds one output file open while it writes the
    /// merged run.)
    pub max_open_runs: usize,
}

/// Edges read from shards by external merges.
static MERGE_EDGES_IN: kagen_obs::Counter = kagen_obs::Counter::new("merge.edges_in");
/// Edges emitted by external merges (after dedup).
static MERGE_EDGES_OUT: kagen_obs::Counter = kagen_obs::Counter::new("merge.edges_out");
/// Sorted runs spilled to disk across external merges.
static MERGE_RUNS: kagen_obs::Counter = kagen_obs::Counter::new("merge.runs");
/// Intermediate merge-tree passes across external merges.
static MERGE_PASSES: kagen_obs::Counter = kagen_obs::Counter::new("merge.passes");
/// High-water marks: run-buffer edges and simultaneously open runs.
static MERGE_MAX_BUFFERED: kagen_obs::Gauge = kagen_obs::Gauge::new("merge.max_buffered");
static MERGE_MAX_OPEN_RUNS: kagen_obs::Gauge = kagen_obs::Gauge::new("merge.max_open_runs");

impl MergeStats {
    /// Fold this merge's totals into the run-wide obs metrics (called
    /// once per completed merge — telemetry, not accounting).
    fn record_metrics(&self) {
        MERGE_EDGES_IN.add(self.edges_in);
        MERGE_EDGES_OUT.add(self.edges_out);
        MERGE_RUNS.add(self.runs as u64);
        MERGE_PASSES.add(self.merge_passes as u64);
        MERGE_MAX_BUFFERED.record_peak(self.max_buffered as u64);
        MERGE_MAX_OPEN_RUNS.record_peak(self.max_open_runs as u64);
    }
}

/// A sorted batch consumer of the k-way merge (one call per
/// [`OUT_BATCH_EDGES`]-sized slice).
type BatchConsumer<'a> = dyn FnMut(&[(u64, u64)]) -> io::Result<()> + 'a;

/// One run's read cursor during the k-way merge.
struct RunCursor {
    dec: CompressedEdgeReader<BufReader<File>>,
}

impl RunCursor {
    fn next(&mut self) -> io::Result<Option<(u64, u64)>> {
        self.dec.next_edge()
    }
}

/// Heap entry: min-heap by edge via reversed `Ord`.
struct HeapEntry {
    edge: (u64, u64),
    run: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.edge == other.edge && self.run == other.run
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest edge.
        other
            .edge
            .cmp(&self.edge)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// Batch size of the merged output stream (edges per `push_batch`) —
/// the pipeline-wide batching granularity.
const OUT_BATCH_EDGES: usize = kagen_core::streaming::BATCH_EDGES;

/// Default fan-in cap of the k-way merge tree: high enough that a
/// single pass covers every realistic run count (64 runs × a multi-GiB
/// budget slice each), low enough to stay far under any fd soft limit
/// and to keep the decoder working set bounded.
pub const DEFAULT_FAN_IN: usize = 64;

/// Minimum edges per parallel spill piece: below this, sorting is cheaper
/// than thread handoff and extra run files.
const MIN_PIECE_EDGES: usize = 1 << 15;

/// Remove adjacent duplicates from a sorted slice in place; returns the
/// deduplicated length (slice variant of `Vec::dedup`, needed because
/// spill pieces are borrowed sub-slices of the run buffer).
fn dedup_in_place(s: &mut [(u64, u64)]) -> usize {
    if s.is_empty() {
        return 0;
    }
    let mut w = 0;
    for r in 1..s.len() {
        if s[r] != s[w] {
            w += 1;
            s[w] = s[r];
        }
    }
    w + 1
}

/// The external merge driver.
#[derive(Debug)]
pub struct ExternalMerge {
    budget_edges: usize,
    run_dir: PathBuf,
    threads: usize,
    fan_in: usize,
}

impl ExternalMerge {
    /// Merger buffering at most `budget_edges` edges in memory and
    /// spilling sorted runs into `run_dir` (created if missing, run
    /// files removed afterwards).
    pub fn new(run_dir: impl Into<PathBuf>, budget_edges: usize) -> ExternalMerge {
        ExternalMerge {
            budget_edges: budget_edges.max(1),
            run_dir: run_dir.into(),
            threads: 0,
            fan_in: DEFAULT_FAN_IN,
        }
    }

    /// Cap the number of runs merged (and files held open) at once;
    /// more runs than this merge in intermediate passes. Clamped to at
    /// least 2.
    pub fn with_fan_in(mut self, fan_in: usize) -> ExternalMerge {
        self.fan_in = fan_in.max(2);
        self
    }

    /// Bound the reader workers of parallel run formation
    /// (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> ExternalMerge {
        self.threads = threads;
        self
    }

    /// The effective thread budget (`0` = all cores).
    fn threads_cap(&self) -> usize {
        if self.threads == 0 {
            // kagen-lint: allow(d2) -- core count changes scheduling only; the merged
            // stream is proven thread-invariant (parallel run-formation determinism tests)
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Reader worker count: never more workers than threads, shards, or
    /// budgeted edges (every worker must own at least one shard and at
    /// least one buffered edge).
    fn reader_workers(&self, shards: usize) -> usize {
        self.threads_cap().min(shards).min(self.budget_edges).max(1)
    }

    /// Sort, dedup and spill one worker's local buffer as one or more
    /// run files. When the worker has spare thread budget
    /// (`piece_threads > 1`, i.e. fewer shards than cores) and the
    /// buffer is large, it is split into disjoint in-place pieces
    /// sorted, deduplicated and encoded concurrently — no copy, peak
    /// memory stays at the budget. Each piece becomes its own run; the
    /// k-way merge absorbs them at one heap entry each.
    fn spill_local(
        run_dir: &Path,
        worker: usize,
        seq: usize,
        piece_threads: usize,
        buf: &mut Vec<(u64, u64)>,
        undirected: bool,
        runs: &mut Vec<PathBuf>,
    ) -> io::Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let pieces = piece_threads
            .min(buf.len().div_ceil(MIN_PIECE_EDGES))
            .max(1);
        let piece_len = buf.len().div_ceil(pieces);
        let jobs: Vec<(PathBuf, &mut [(u64, u64)])> = buf
            .chunks_mut(piece_len)
            .enumerate()
            .map(|(i, piece)| {
                let path = run_dir.join(format!("run-w{worker:03}-{seq:05}-p{i:02}.kgc"));
                (path, piece)
            })
            .collect();
        let results: Vec<io::Result<PathBuf>> = if jobs.len() == 1 {
            jobs.into_iter()
                .map(|(path, piece)| Self::encode_piece(path, piece, undirected))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(path, piece)| {
                        scope.spawn(move || Self::encode_piece(path, piece, undirected))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        for r in results {
            runs.push(r?);
        }
        buf.clear();
        Ok(())
    }

    /// Sort + dedup + varint-encode one in-place piece into `path`.
    fn encode_piece(
        path: PathBuf,
        piece: &mut [(u64, u64)],
        undirected: bool,
    ) -> io::Result<PathBuf> {
        piece.sort_unstable();
        let len = if undirected {
            dedup_in_place(piece)
        } else {
            piece.len()
        };
        let mut enc = CompressedEdgeWriter::new(BufWriter::new(File::create(&path)?), 0)?;
        enc.push_slice(&piece[..len])?;
        enc.finish()?;
        Ok(path)
    }

    /// One reader worker: stream the shards in `shard_range`, buffering
    /// at most `local_budget` edges, spilling sorted runs as the buffer
    /// fills. Checksum validation happens inside `stream_shard`, so the
    /// integrity pass parallelizes along with the decode.
    fn read_and_spill(
        &self,
        reader: &ShardReader,
        worker: usize,
        shard_range: std::ops::Range<usize>,
        local_budget: usize,
        piece_threads: usize,
        undirected: bool,
    ) -> io::Result<ReaderReport> {
        let mut report = ReaderReport {
            runs: Vec::new(),
            edges_in: 0,
            max_buffered: 0,
        };
        let mut buf: Vec<(u64, u64)> = Vec::with_capacity(local_budget);
        let mut spill_err: Option<io::Error> = None;
        let mut seq = 0usize;
        for shard in shard_range {
            let mut on_edge = |u: u64, v: u64| {
                if spill_err.is_some() {
                    return;
                }
                report.edges_in += 1;
                let e = if undirected && u > v { (v, u) } else { (u, v) };
                buf.push(e);
                report.max_buffered = report.max_buffered.max(buf.len());
                if buf.len() >= local_budget {
                    if let Err(e) = Self::spill_local(
                        &self.run_dir,
                        worker,
                        seq,
                        piece_threads,
                        &mut buf,
                        undirected,
                        &mut report.runs,
                    ) {
                        spill_err = Some(e);
                    }
                    seq += 1;
                }
            };
            reader.stream_shard(shard, &mut on_edge)?;
            if let Some(e) = spill_err.take() {
                return Err(e);
            }
        }
        Self::spill_local(
            &self.run_dir,
            worker,
            seq,
            piece_threads,
            &mut buf,
            undirected,
            &mut report.runs,
        )?;
        Ok(report)
    }

    /// Heap-merge the sorted runs in `paths` (≤ fan-in of them) into
    /// sorted batches of at most [`OUT_BATCH_EDGES`] edges, dropping
    /// adjacent duplicates when `undirected`. Ties between runs resolve
    /// in slice order. Holds exactly `paths.len()` files open.
    fn merge_runs(
        paths: &[PathBuf],
        undirected: bool,
        on_batch: &mut BatchConsumer,
    ) -> io::Result<()> {
        let mut cursors = Vec::with_capacity(paths.len());
        for path in paths {
            cursors.push(RunCursor {
                dec: CompressedEdgeReader::new(BufReader::new(File::open(path)?))?,
            });
        }
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            if let Some(edge) = c.next()? {
                heap.push(HeapEntry { edge, run: i });
            }
        }
        let mut last: Option<(u64, u64)> = None;
        let mut batch: Vec<(u64, u64)> = Vec::with_capacity(OUT_BATCH_EDGES);
        while let Some(HeapEntry { edge, run }) = heap.pop() {
            if !(undirected && last == Some(edge)) {
                batch.push(edge);
                if batch.len() >= OUT_BATCH_EDGES {
                    on_batch(&batch)?;
                    batch.clear();
                }
                last = Some(edge);
            }
            if let Some(next) = cursors[run].next()? {
                heap.push(HeapEntry { edge: next, run });
            }
        }
        if !batch.is_empty() {
            on_batch(&batch)?;
        }
        Ok(())
    }

    /// Merge every shard of `reader` into `out`, deduplicating cross-PE
    /// duplicates when the manifest says the instance is undirected
    /// (directed instances keep multi-edges, matching
    /// `generate_directed`). Edges arrive at `out` in sorted order.
    /// `out.finish()` is left to the caller.
    pub fn merge(&self, reader: &ShardReader, out: &mut dyn EdgeSink) -> io::Result<MergeStats> {
        let undirected = !reader.manifest().directed;
        std::fs::create_dir_all(&self.run_dir)?;
        let mut stats = MergeStats::default();
        let mut runs: Vec<PathBuf> = Vec::new();

        // Phase 1: shard-level parallel reading → sorted runs. The shard
        // list is split into one contiguous group per reader worker and
        // the groups stream concurrently, each within its slice of the
        // edge budget — the budget bounds the *sum* of the local buffers.
        let shard_count = reader.manifest().shards.len();
        if shard_count > 0 {
            let workers = self.reader_workers(shard_count);
            let local_budget = (self.budget_edges / workers).max(1);
            // Threads left over when shards < cores go into sorting:
            // each worker may split its spills into this many pieces.
            let piece_threads = self.threads_cap().div_ceil(workers);
            let groups = kagen_runtime::split_ranges(shard_count, workers);
            let reports: Vec<io::Result<ReaderReport>> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .enumerate()
                    .map(|(worker, group)| {
                        scope.spawn(move || {
                            self.read_and_spill(
                                reader,
                                worker,
                                group,
                                local_budget,
                                piece_threads,
                                undirected,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in reports {
                let report = r?;
                stats.edges_in += report.edges_in;
                stats.max_buffered += report.max_buffered;
                runs.extend(report.runs);
            }
        }
        stats.runs = runs.len();

        // Phase 2: k-way merge tree, at most `fan_in` runs (and open
        // files) per merge. Groups are contiguous and in run order, so
        // ties keep resolving in original run order across passes and
        // the final stream is identical to a single unbounded merge.
        let mut pass = 0usize;
        while runs.len() > self.fan_in {
            let mut next_runs: Vec<PathBuf> = Vec::new();
            for (group_idx, group) in runs.chunks(self.fan_in).enumerate() {
                if let [single] = group {
                    // A remainder group of one is already a sorted,
                    // deduplicated run — pass it through instead of
                    // decoding and re-encoding it unchanged.
                    next_runs.push(single.clone());
                    continue;
                }
                stats.max_open_runs = stats.max_open_runs.max(group.len());
                let path = self
                    .run_dir
                    .join(format!("merge-p{pass:02}-{group_idx:05}.kgc"));
                let mut enc = CompressedEdgeWriter::new(BufWriter::new(File::create(&path)?), 0)?;
                Self::merge_runs(group, undirected, &mut |batch| {
                    enc.push_slice(batch)?;
                    Ok(())
                })?;
                enc.finish()?;
                for p in group {
                    std::fs::remove_file(p).ok();
                }
                next_runs.push(path);
            }
            runs = next_runs;
            pass += 1;
            stats.merge_passes = pass;
        }
        stats.max_open_runs = stats.max_open_runs.max(runs.len());
        Self::merge_runs(&runs, undirected, &mut |batch| {
            out.push_batch(batch);
            stats.edges_out += batch.len() as u64;
            Ok(())
        })?;

        for path in runs {
            std::fs::remove_file(path).ok();
        }
        // Remove the run directory too if it is now empty (it may be a
        // pre-existing directory holding other files — leave those).
        std::fs::remove_dir(&self.run_dir).ok();
        stats.record_metrics();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FnSink;
    use crate::writer::{write_sharded, InstanceMeta, ShardFormat, StreamConfig};
    use kagen_core::prelude::*;

    fn run_merge<G: kagen_core::streaming::StreamingGenerator>(
        gen: &G,
        model: &str,
        budget: usize,
        tag: &str,
    ) -> (Vec<(u64, u64)>, MergeStats) {
        let dir = std::env::temp_dir().join(format!("kagen_merge_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: model.into(),
            params: String::new(),
            seed: 1,
        };
        write_sharded(
            gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        let mut edges = Vec::new();
        let mut sink = FnSink::new(|u, v| edges.push((u, v)));
        let stats = ExternalMerge::new(dir.join("runs"), budget)
            .merge(&reader, &mut sink)
            .unwrap();
        sink.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (edges, stats)
    }

    #[test]
    fn undirected_equals_in_ram_merge() {
        let gen = GnmUndirected::new(250, 2000).with_seed(1).with_chunks(8);
        let expect = generate_undirected(&gen);
        for budget in [64usize, 1000, 1_000_000] {
            let (edges, stats) = run_merge(&gen, "gnm_undirected", budget, &format!("u{budget}"));
            assert_eq!(edges, expect.edges, "budget {budget}");
            assert_eq!(stats.edges_out, expect.edges.len() as u64);
            assert!(stats.max_buffered <= budget, "budget violated");
        }
    }

    #[test]
    fn directed_equals_in_ram_merge() {
        let gen = Rmat::new(8, 3000).with_seed(1).with_chunks(5);
        let expect = generate_directed(&gen);
        let (edges, stats) = run_merge(&gen, "rmat", 100, "d");
        // R-MAT may contain duplicate edges; they must all survive.
        assert_eq!(edges, expect.edges);
        assert_eq!(stats.edges_in, 3000);
    }

    #[test]
    fn tiny_budget_many_runs() {
        let gen = GnmUndirected::new(80, 500).with_seed(9).with_chunks(4);
        let expect = generate_undirected(&gen);
        let (edges, stats) = run_merge(&gen, "gnm_undirected", 16, "tiny");
        assert_eq!(edges, expect.edges);
        assert!(stats.runs > 10, "expected many runs, got {}", stats.runs);
    }

    #[test]
    fn parallel_shard_reading_matches_sequential() {
        // Run formation reads shards in parallel, one contiguous shard
        // group per worker, each with its slice of the budget. The
        // merged stream must be identical for every worker count —
        // including more workers than shards — and to the in-RAM merge.
        let gen = GnmUndirected::new(2000, 120_000)
            .with_seed(4)
            .with_chunks(8);
        let expect = generate_undirected(&gen);
        let dir = std::env::temp_dir().join("kagen_merge_par");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_undirected".into(),
            params: String::new(),
            seed: 4,
        };
        write_sharded(
            &gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        let mut run_counts = Vec::new();
        let mut edges_in = Vec::new();
        for threads in [1usize, 4, 8, 16] {
            let mut edges = Vec::new();
            let mut sink = FnSink::new(|u, v| edges.push((u, v)));
            let stats = ExternalMerge::new(dir.join("runs"), 1 << 20)
                .with_threads(threads)
                .merge(&reader, &mut sink)
                .unwrap();
            sink.finish().unwrap();
            assert_eq!(edges, expect.edges, "threads={threads}");
            assert!(
                stats.max_buffered <= 1 << 20,
                "budget violated at threads={threads}"
            );
            run_counts.push(stats.runs);
            edges_in.push(stats.edges_in);
        }
        assert!(
            edges_in.iter().all(|&e| e == edges_in[0]),
            "edge intake must not depend on worker count ({edges_in:?})"
        );
        // One run per reader worker here (the budget slice never fills):
        // 1, 4, 8, and 8 again (workers are capped at the shard count).
        assert_eq!(run_counts, vec![1, 4, 8, 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn few_shards_many_threads_still_sort_in_parallel() {
        // 2 shards but 8 threads: reader parallelism is capped at 2, so
        // the spare thread budget must go into piece-parallel sorting —
        // more runs than shards, identical merged output.
        let gen = GnmUndirected::new(3000, 200_000)
            .with_seed(6)
            .with_chunks(2);
        let expect = generate_undirected(&gen);
        let dir = std::env::temp_dir().join("kagen_merge_pieces");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_undirected".into(),
            params: String::new(),
            seed: 6,
        };
        write_sharded(
            &gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        let mut edges = Vec::new();
        let mut sink = FnSink::new(|u, v| edges.push((u, v)));
        let stats = ExternalMerge::new(dir.join("runs"), 1 << 20)
            .with_threads(8)
            .merge(&reader, &mut sink)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(edges, expect.edges);
        assert!(
            stats.runs > 2,
            "piece sorting must produce more runs than shards ({})",
            stats.runs
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fan_in_cap_bounds_open_files_and_preserves_stream() {
        // Force far more runs than the fan-in cap: the merge tree must
        // never hold more than `fan_in` run files open, must take
        // multiple passes, and must emit the identical stream a
        // single-pass (unbounded fan-in) merge produces — for both the
        // deduplicating undirected path and the multi-edge-preserving
        // directed path.
        let budget = 64usize; // tiny budget → one run per ~64 edges
        for (directed, tag) in [(false, "fanu"), (true, "fand")] {
            let dir = std::env::temp_dir().join(format!("kagen_merge_{tag}"));
            std::fs::remove_dir_all(&dir).ok();
            let meta = InstanceMeta {
                model: if directed { "rmat" } else { "gnm_undirected" }.into(),
                params: String::new(),
                seed: 5,
            };
            let manifest = if directed {
                let gen = Rmat::new(10, 20_000).with_seed(5).with_chunks(6);
                write_sharded(
                    &gen,
                    &meta,
                    &StreamConfig::new(&dir, ShardFormat::Compressed),
                )
                .unwrap()
            } else {
                let gen = GnmUndirected::new(2000, 20_000).with_seed(5).with_chunks(6);
                write_sharded(
                    &gen,
                    &meta,
                    &StreamConfig::new(&dir, ShardFormat::Compressed),
                )
                .unwrap()
            };
            assert_eq!(manifest.directed, directed);
            let reader = ShardReader::open(&dir).unwrap();

            let mut single = Vec::new();
            let mut sink = FnSink::new(|u, v| single.push((u, v)));
            let huge = ExternalMerge::new(dir.join("runs"), budget)
                .with_fan_in(usize::MAX)
                .merge(&reader, &mut sink)
                .unwrap();
            sink.finish().unwrap();
            assert!(huge.runs > 100, "want many runs, got {}", huge.runs);
            assert_eq!(huge.merge_passes, 0, "unbounded fan-in needs no passes");

            for fan_in in [4usize, 64] {
                let mut edges = Vec::new();
                let mut sink = FnSink::new(|u, v| edges.push((u, v)));
                let stats = ExternalMerge::new(dir.join("runs"), budget)
                    .with_fan_in(fan_in)
                    .merge(&reader, &mut sink)
                    .unwrap();
                sink.finish().unwrap();
                assert_eq!(edges, single, "{tag}: stream differs at fan_in={fan_in}");
                assert!(
                    stats.max_open_runs <= fan_in,
                    "{tag}: {} files open under cap {fan_in}",
                    stats.max_open_runs
                );
                assert!(
                    stats.merge_passes >= 1,
                    "{tag}: cap {fan_in} over {} runs must need passes",
                    stats.runs
                );
                assert!(stats.max_buffered <= budget, "budget violated");
                assert_eq!(stats.edges_out, single.len() as u64);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn fan_in_leaves_no_intermediate_files() {
        let gen = GnmUndirected::new(500, 5000).with_seed(2).with_chunks(4);
        let dir = std::env::temp_dir().join("kagen_merge_fanclean");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_undirected".into(),
            params: String::new(),
            seed: 2,
        };
        write_sharded(
            &gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        let mut sink = FnSink::new(|_, _| {});
        ExternalMerge::new(dir.join("runs"), 32)
            .with_fan_in(3)
            .merge(&reader, &mut sink)
            .unwrap();
        assert!(
            !dir.join("runs").exists(),
            "run directory (and intermediate merge files) must be cleaned up"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_instance() {
        let gen = GnmUndirected::new(10, 0).with_seed(2).with_chunks(2);
        let (edges, stats) = run_merge(&gen, "gnm_undirected", 100, "empty");
        assert!(edges.is_empty());
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.edges_out, 0);
    }
}
