//! Directed G(n,m) and G(n,p) (§4.1, §4.3).

use super::{GnpLeaves, MonotoneEdgeDecoder};
use crate::{Generator, PeGraph};
use kagen_dist::binomial;
use kagen_sampling::vitter::{sample_sorted, sample_sorted_batched};
use kagen_sampling::{bernoulli_sample, bernoulli_sample_batched, DistributedSampler};
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Mt64};

/// Pick the leaf-block count for an edge universe: a granularity derived
/// from the instance parameters alone (never from the PE count, see
/// DESIGN.md), coarse enough that per-block PRNG setup amortizes
/// (≥ ~256 expected samples per block — fine enough that up to ~2^10 PEs
/// stay load-balanced on small instances) and fine enough that leaves
/// stay in the f64-exact sampling regime.
pub(crate) fn er_blocks(universe: u128, expected_samples: u64) -> u64 {
    let mut blocks: u64 = 1;
    while (blocks as u128) * 2 <= universe
        && blocks < (1 << 20)
        && expected_samples / (2 * blocks) >= 256
    {
        blocks *= 2;
    }
    while universe / (blocks as u128) > (1u128 << 44) && (blocks as u128) * 2 <= universe {
        blocks *= 2;
    }
    blocks
}

/// Assign PE `pe` of `chunks` its contiguous block range.
pub(crate) fn pe_block_range(blocks: u64, chunks: usize, pe: usize) -> (u64, u64) {
    let chunks = chunks as u64;
    let pe = pe as u64;
    (blocks * pe / chunks, blocks * (pe + 1) / chunks)
}

/// Directed Erdős–Rényi G(n,m): a uniform graph with exactly `m` distinct
/// directed edges and no self-loops (§4.1).
#[derive(Clone, Debug)]
pub struct GnmDirected {
    n: u64,
    m: u64,
    seed: u64,
    chunks: usize,
}

impl GnmDirected {
    /// New instance with `n` vertices and `m` edges.
    ///
    /// Panics if `m` exceeds the universe `n(n−1)`.
    pub fn new(n: u64, m: u64) -> Self {
        let universe = (n as u128) * (n as u128).saturating_sub(1);
        assert!(
            (m as u128) <= universe,
            "m={m} exceeds the directed universe n(n-1)={universe}"
        );
        GnmDirected {
            n,
            m,
            seed: 1,
            chunks: 64,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// The instance's divide-and-conquer sampler (`None` when the edge
    /// universe is empty). Exposed so accelerator backends can run the
    /// §4.3.1 split: count recursion on the host, leaf sampling on the
    /// device, against the *same* decomposition.
    pub fn sampler(&self) -> Option<DistributedSampler> {
        let universe = (self.n as u128) * (self.n as u128).saturating_sub(1);
        if universe == 0 {
            return None;
        }
        Some(DistributedSampler::new(
            universe,
            self.m,
            er_blocks(universe, self.m),
            derive_seed(self.seed, &[stream::MISC, 0x6d64]), // "md" = gnm directed
        ))
    }
}

impl Generator for GnmDirected {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        true
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };
        self.stream_edges(pe, &mut |u, v| out.edges.push((u, v)));
        if let Some(sampler) = self.sampler() {
            let (lo, hi) = pe_block_range(sampler.blocks(), self.chunks, pe);
            let n = self.n;
            if lo < hi {
                out.vertex_begin = (sampler.block_range(lo).0 / (n as u128 - 1)) as u64;
                out.vertex_end = ((sampler.block_range(hi - 1).1 - 1) / (n as u128 - 1) + 1) as u64;
            }
        }
        out
    }
}

impl GnmDirected {
    /// One body for both delivery shapes — `BATCHED` only selects the
    /// leaf kernel (block-treated Method D vs per-draw), so the PE walk
    /// and decode can never drift apart between the two paths.
    fn stream_edges_impl<const BATCHED: bool, F: FnMut(u64, u64) + ?Sized>(
        &self,
        pe: usize,
        emit: &mut F,
    ) {
        let Some(sampler) = self.sampler() else {
            return;
        };
        let (lo, hi) = pe_block_range(sampler.blocks(), self.chunks, pe);
        // Sample indices arrive sorted across the PE's blocks: decode
        // rows incrementally instead of a u128 division per edge.
        let mut dec = MonotoneEdgeDecoder::new(self.n);
        let mut on_idx = |idx: u128| {
            let (u, v) = dec.decode(idx);
            emit(u, v);
        };
        if BATCHED {
            sampler.sample_range_batched(lo, hi, &mut on_idx);
        } else {
            sampler.sample_range(lo, hi, &mut on_idx);
        }
    }

    /// Emit PE `pe`'s edges without materializing them (§9 streaming).
    /// Generic over the consumer so concrete callers (the batched path,
    /// `generate_pe`) monomorphize with no per-edge virtual dispatch.
    pub(crate) fn stream_edges<F: FnMut(u64, u64) + ?Sized>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<false, F>(pe, emit);
    }

    /// Block-treated [`Self::stream_edges`]: the identical edge stream,
    /// with every leaf's Method D uniforms served from a block-buffered
    /// PRNG (see `sample_sorted_batched`). `emit` is monomorphic so the
    /// whole decode-and-push loop inlines into the caller's batcher.
    pub(crate) fn stream_edges_batched<F: FnMut(u64, u64)>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<true, F>(pe, emit);
    }
}

/// Directed Gilbert G(n,p): every ordered pair sampled independently with
/// probability `p` (§4.3 — per-chunk binomial counts, then leaf sampling).
#[derive(Clone, Debug)]
pub struct GnpDirected {
    n: u64,
    p: f64,
    seed: u64,
    chunks: usize,
    leaves: GnpLeaves,
}

impl GnpDirected {
    /// New instance with `n` vertices and edge probability `p`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        GnpDirected {
            n,
            p,
            seed: 1,
            chunks: 64,
            leaves: GnpLeaves::default(),
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Select the leaf-sampling algorithm (part of the instance
    /// definition — see [`GnpLeaves`]).
    pub fn with_leaves(mut self, leaves: GnpLeaves) -> Self {
        self.leaves = leaves;
        self
    }
}

impl Generator for GnpDirected {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        true
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };
        self.stream_edges(pe, &mut |u, v| out.edges.push((u, v)));
        out
    }
}

impl GnpDirected {
    /// The leaf decomposition shared by every G(n,p) path (and by the
    /// GPGPU backend): `(universe, blocks)`, or `None` when the instance
    /// is empty. Identical for both leaf samplers, so `AlgoD` keeps
    /// reproducing pre-swap instances.
    fn leaf_plan(&self) -> Option<(u128, u64)> {
        let universe = (self.n as u128) * (self.n as u128).saturating_sub(1);
        if universe == 0 || self.p == 0.0 {
            return None;
        }
        let expected = ((universe as f64) * self.p) as u64;
        Some((universe, er_blocks(universe, expected.max(1))))
    }

    /// One body for both delivery shapes — `BATCHED` only selects the
    /// leaf kernels (blocked skip conversion / block-treated Method D
    /// vs their per-draw forms), so the leaf walk, seeding and decode
    /// can never drift apart between the two paths.
    fn stream_edges_impl<const BATCHED: bool, F: FnMut(u64, u64) + ?Sized>(
        &self,
        pe: usize,
        emit: &mut F,
    ) {
        let Some((universe, blocks)) = self.leaf_plan() else {
            return;
        };
        let (lo, hi) = pe_block_range(blocks, self.chunks, pe);
        // Blocks are visited in order and samples are sorted within each,
        // so the whole PE's index stream is sorted: one incremental
        // decoder replaces the per-edge u128 division.
        let mut dec = MonotoneEdgeDecoder::new(self.n);
        for b in lo..hi {
            let start = universe * b as u128 / blocks as u128;
            let end = universe * (b + 1) as u128 / blocks as u128;
            let len = (end - start) as u64; // leaves are <= 2^44 (er_blocks)
            let mut on_idx = |i: u64| {
                let (u, v) = dec.decode(start + i as u128);
                emit(u, v);
            };
            match self.leaves {
                GnpLeaves::Skip => {
                    // Geometric skip sampling: one uniform per edge from
                    // the leaf-seeded PRNG, no count draw needed.
                    let mut rng = Mt64::new(derive_seed(self.seed, &[stream::SAMPLE, b]));
                    if BATCHED {
                        bernoulli_sample_batched(&mut rng, len, self.p, &mut |idxs| {
                            for &i in idxs {
                                on_idx(i);
                            }
                        });
                    } else {
                        bernoulli_sample(&mut rng, len, self.p, &mut on_idx);
                    }
                }
                GnpLeaves::AlgoD => {
                    // The historical path: a "predetermined" binomial
                    // count over the chunk universe (§4.3), then Vitter D.
                    let mut count_rng = Mt64::new(derive_seed(self.seed, &[stream::COUNT, b]));
                    let count = binomial(&mut count_rng, len as u128, self.p);
                    let mut sample_rng = Mt64::new(derive_seed(self.seed, &[stream::SAMPLE, b]));
                    if BATCHED {
                        sample_sorted_batched(&mut sample_rng, len, count, &mut on_idx);
                    } else {
                        sample_sorted(&mut sample_rng, len, count, &mut on_idx);
                    }
                }
            }
        }
    }

    /// Emit PE `pe`'s edges without materializing them (§9 streaming).
    /// Generic over the consumer — see [`GnmDirected::stream_edges`].
    pub(crate) fn stream_edges<F: FnMut(u64, u64) + ?Sized>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<false, F>(pe, emit);
    }

    /// Block-batched [`Self::stream_edges`]: skips drawn and converted
    /// in blocks (`bernoulli_sample_batched`), indices decoded in a
    /// monomorphic loop — the identical edge stream, delivered off the
    /// per-edge `ln` bound.
    pub(crate) fn stream_edges_batched<F: FnMut(u64, u64)>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<true, F>(pe, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_directed;

    #[test]
    fn gnm_exact_edge_count_no_dupes() {
        let gen = GnmDirected::new(200, 4000).with_seed(3).with_chunks(8);
        let el = generate_directed(&gen);
        assert_eq!(el.edges.len(), 4000);
        let mut sorted = el.edges.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4000, "duplicate edges");
        assert!(!el.has_self_loops());
        assert!(!el.has_out_of_range());
    }

    #[test]
    fn gnm_chunk_invariance() {
        // Same instance regardless of the PE count.
        let base = generate_directed(&GnmDirected::new(100, 1500).with_seed(7).with_chunks(1));
        for chunks in [2usize, 3, 16, 64] {
            let other =
                generate_directed(&GnmDirected::new(100, 1500).with_seed(7).with_chunks(chunks));
            assert_eq!(base, other, "chunks={chunks}");
        }
    }

    #[test]
    fn gnm_full_universe() {
        let n = 20u64;
        let m = n * (n - 1);
        let el = generate_directed(&GnmDirected::new(n, m).with_seed(1));
        assert_eq!(el.edges.len() as u64, m);
    }

    #[test]
    fn gnm_uniformity_over_pairs() {
        // Each ordered pair appears with probability m/(n(n-1)).
        let n = 12u64;
        let m = 30u64;
        let reps = 4000;
        let mut counts = std::collections::HashMap::new();
        for seed in 0..reps {
            let el = generate_directed(&GnmDirected::new(n, m).with_seed(seed));
            for e in el.edges {
                *counts.entry(e).or_insert(0u32) += 1;
            }
        }
        let expect = reps as f64 * m as f64 / (n * (n - 1)) as f64;
        let sd = (expect * (1.0 - m as f64 / (n * (n - 1)) as f64)).sqrt();
        for (e, c) in counts {
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "pair {e:?}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn gnp_mean_edge_count() {
        let n = 300u64;
        let p = 0.01;
        let mut total = 0usize;
        let reps = 40;
        for seed in 0..reps {
            let el = generate_directed(&GnpDirected::new(n, p).with_seed(seed));
            assert!(!el.has_self_loops());
            let mut edges = el.edges.clone();
            edges.dedup();
            assert_eq!(edges.len(), el.edges.len(), "duplicates");
            total += el.edges.len();
        }
        let mean = total as f64 / reps as f64;
        let expect = (n * (n - 1)) as f64 * p;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn gnp_chunk_invariance() {
        let a = generate_directed(&GnpDirected::new(150, 0.05).with_seed(9).with_chunks(1));
        let b = generate_directed(&GnpDirected::new(150, 0.05).with_seed(9).with_chunks(13));
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_leaf_samplers_define_distinct_instances() {
        // Same distribution, different PRNG walk: the two leaf samplers
        // must not silently alias each other.
        let skip = generate_directed(&GnpDirected::new(200, 0.05).with_seed(3));
        let algo_d = generate_directed(
            &GnpDirected::new(200, 0.05)
                .with_seed(3)
                .with_leaves(GnpLeaves::AlgoD),
        );
        assert_ne!(skip.edges, algo_d.edges);
        // Both stay simple and in range.
        for el in [&skip, &algo_d] {
            assert!(!el.has_self_loops());
            assert!(!el.has_out_of_range());
        }
    }

    #[test]
    fn gnp_algo_d_mean_edge_count() {
        // The back-compat sampler keeps drawing correct G(n,p).
        let n = 300u64;
        let p = 0.01;
        let reps = 40;
        let total: usize = (0..reps)
            .map(|seed| {
                generate_directed(
                    &GnpDirected::new(n, p)
                        .with_seed(seed)
                        .with_leaves(GnpLeaves::AlgoD),
                )
                .edges
                .len()
            })
            .sum();
        let mean = total as f64 / reps as f64;
        let expect = (n * (n - 1)) as f64 * p;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn gnp_algo_d_chunk_invariance() {
        let a = generate_directed(
            &GnpDirected::new(150, 0.05)
                .with_seed(9)
                .with_leaves(GnpLeaves::AlgoD)
                .with_chunks(1),
        );
        let b = generate_directed(
            &GnpDirected::new(150, 0.05)
                .with_seed(9)
                .with_leaves(GnpLeaves::AlgoD)
                .with_chunks(13),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_batched_equals_per_edge_both_samplers() {
        // The block-batched fill must reproduce the per-edge stream
        // bit-for-bit under both leaf samplers.
        for leaves in [GnpLeaves::Skip, GnpLeaves::AlgoD] {
            let gen = GnpDirected::new(400, 0.03)
                .with_seed(5)
                .with_chunks(7)
                .with_leaves(leaves);
            for pe in 0..7 {
                let mut a = Vec::new();
                gen.stream_edges(pe, &mut |u: u64, v: u64| a.push((u, v)));
                let mut b = Vec::new();
                gen.stream_edges_batched(pe, &mut |u, v| b.push((u, v)));
                assert_eq!(a, b, "leaves={leaves:?} pe={pe}");
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        let el = generate_directed(&GnmDirected::new(1, 0).with_seed(1));
        assert_eq!(el.edges.len(), 0);
        let el = generate_directed(&GnpDirected::new(1, 0.5).with_seed(1));
        assert_eq!(el.edges.len(), 0);
        let el = generate_directed(&GnmDirected::new(5, 0).with_seed(1));
        assert_eq!(el.edges.len(), 0);
    }

    #[test]
    fn more_chunks_than_blocks_is_safe() {
        // Tiny universe, many PEs: trailing PEs own empty block ranges.
        let gen = GnmDirected::new(6, 10).with_seed(2).with_chunks(512);
        let el = generate_directed(&gen);
        assert_eq!(el.edges.len(), 10);
    }
}
