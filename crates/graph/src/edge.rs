//! Edge lists: the native output format of all generators.

use crate::{Edge, Node};

/// An edge list with a vertex count.
///
/// For undirected graphs the convention across this workspace is to store
/// each edge once in canonical orientation `(min, max)`; per-PE outputs may
/// contain both orientations (each PE emits all edges *incident to its
/// local vertices*, §1), which [`EdgeList::canonicalize`] and
/// [`merge_pe_edges`] normalize.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (ids are `0..n`).
    pub n: Node,
    /// The edges.
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// Create an edge list over `n` vertices.
    pub fn new(n: Node, edges: Vec<Edge>) -> Self {
        EdgeList { n, edges }
    }

    /// Number of edges currently stored.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Re-orient every edge to `(min, max)`, sort, and remove duplicates.
    /// This is the canonical form of an undirected graph.
    pub fn canonicalize(&mut self) {
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Sort and deduplicate without re-orienting (directed graphs).
    pub fn sort_dedup(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// True if any edge references a vertex `>= n` (validation helper).
    pub fn has_out_of_range(&self) -> bool {
        self.edges.iter().any(|&(u, v)| u >= self.n || v >= self.n)
    }

    /// True if any self-loop is present.
    pub fn has_self_loops(&self) -> bool {
        self.edges.iter().any(|&(u, v)| u == v)
    }

    /// Out-degree (directed) or degree (canonical undirected, counting each
    /// stored edge for both endpoints) per vertex.
    pub fn degrees_undirected(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n as usize];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    /// Out-degrees of a directed edge list.
    pub fn out_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n as usize];
        for &(u, _) in &self.edges {
            deg[u as usize] += 1;
        }
        deg
    }

    /// In-degrees of a directed edge list.
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n as usize];
        for &(_, v) in &self.edges {
            deg[v as usize] += 1;
        }
        deg
    }
}

/// Merge per-PE outputs of an *undirected* generator into one canonical
/// edge list. Cross-PE edges appear in two PE outputs (each endpoint's
/// owner emits them) and are deduplicated here.
pub fn merge_pe_edges(n: Node, per_pe: impl IntoIterator<Item = Vec<Edge>>) -> EdgeList {
    let mut edges: Vec<Edge> = per_pe.into_iter().flatten().collect();
    for e in &mut edges {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    EdgeList { n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_orients_sorts_dedups() {
        let mut el = EdgeList::new(5, vec![(3, 1), (1, 3), (0, 2), (2, 0), (4, 0)]);
        el.canonicalize();
        assert_eq!(el.edges, vec![(0, 2), (0, 4), (1, 3)]);
    }

    #[test]
    fn merge_dedups_cross_pe_duplicates() {
        // PE 0 owns {0,1}, PE 1 owns {2,3}; edge (1,2) emitted by both.
        let merged = merge_pe_edges(4, vec![vec![(0, 1), (1, 2)], vec![(2, 1), (2, 3)]]);
        assert_eq!(merged.edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degrees() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (1, 3)]);
        assert_eq!(el.degrees_undirected(), vec![1, 3, 1, 1]);
        assert_eq!(el.out_degrees(), vec![1, 2, 0, 0]);
        assert_eq!(el.in_degrees(), vec![0, 1, 1, 1]);
    }

    #[test]
    fn validation_helpers() {
        let el = EdgeList::new(3, vec![(0, 1), (2, 2)]);
        assert!(el.has_self_loops());
        assert!(!el.has_out_of_range());
        let el2 = EdgeList::new(2, vec![(0, 5)]);
        assert!(el2.has_out_of_range());
    }

    #[test]
    fn empty_graph() {
        let mut el = EdgeList::new(0, vec![]);
        el.canonicalize();
        assert_eq!(el.m(), 0);
        assert!(!el.has_self_loops());
    }
}
