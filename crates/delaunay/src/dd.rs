//! Error-free transformations and double-double arithmetic.
//!
//! A `Dd` stores a value as an unevaluated sum `hi + lo` with
//! `|lo| ≤ ulp(hi)/2`, giving ~106 bits of mantissa. Sums and differences
//! of plain `f64`s are *exact*; double-double products and sums carry a
//! relative error of order 2⁻¹⁰⁴ — far below the deterministic tie
//! threshold the predicates use.

/// Double-double value `hi + lo`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing error term.
    pub lo: f64,
}

/// Knuth's TwoSum: `a + b = s + e` exactly.
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> Dd {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    Dd { hi: s, lo: err }
}

/// TwoDiff: `a − b = s + e` exactly.
#[inline(always)]
pub fn two_diff(a: f64, b: f64) -> Dd {
    let s = a - b;
    let bb = s - a;
    let err = (a - (s - bb)) - (b + bb);
    Dd { hi: s, lo: err }
}

/// TwoProd via FMA: `a · b = p + e` exactly.
#[inline(always)]
pub fn two_prod(a: f64, b: f64) -> Dd {
    let p = a * b;
    let e = a.mul_add(b, -p);
    Dd { hi: p, lo: e }
}

/// Fast renormalization (requires `|a| >= |b|` in spirit; used after
/// operations that guarantee it).
#[inline(always)]
fn quick_two_sum(a: f64, b: f64) -> Dd {
    let s = a + b;
    let err = b - (s - a);
    Dd { hi: s, lo: err }
}

// Named methods rather than operator impls: the predicates chain them
// explicitly (`a.mul(b).sub(c)`), mirroring the reference formulas.
#[allow(clippy::should_implement_trait)]
impl Dd {
    /// Lift an `f64`.
    #[inline(always)]
    pub fn from(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }

    /// Approximate value.
    #[inline(always)]
    pub fn value(self) -> f64 {
        self.hi + self.lo
    }

    /// Double-double addition (Dekker/Bailey "sloppy" variant).
    #[inline(always)]
    pub fn add(self, other: Dd) -> Dd {
        let s = two_sum(self.hi, other.hi);
        quick_two_sum(s.hi, s.lo + self.lo + other.lo)
    }

    /// Double-double subtraction.
    #[inline(always)]
    pub fn sub(self, other: Dd) -> Dd {
        let s = two_diff(self.hi, other.hi);
        quick_two_sum(s.hi, s.lo + self.lo - other.lo)
    }

    /// Double-double multiplication.
    #[inline(always)]
    pub fn mul(self, other: Dd) -> Dd {
        let p = two_prod(self.hi, other.hi);
        quick_two_sum(p.hi, p.lo + self.hi * other.lo + self.lo * other.hi)
    }

    /// Negation.
    #[inline(always)]
    pub fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_exact() {
        // 1 + 2^-60 is not representable; the error term captures it.
        let r = two_sum(1.0, 2f64.powi(-60));
        assert_eq!(r.hi, 1.0);
        assert_eq!(r.lo, 2f64.powi(-60));
    }

    #[test]
    fn two_prod_exact() {
        // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60: the tail is in lo.
        let x = 1.0 + 2f64.powi(-30);
        let r = two_prod(x, x);
        let exact_hi = 1.0 + 2f64.powi(-29);
        assert_eq!(r.hi, exact_hi);
        assert_eq!(r.lo, 2f64.powi(-60));
    }

    #[test]
    fn dd_catastrophic_cancellation() {
        // (a + tiny) - a must recover tiny exactly through Dd.
        let a = 1e16;
        let tiny = 0.5;
        let sum = Dd::from(a).add(Dd::from(tiny));
        let diff = sum.sub(Dd::from(a));
        assert_eq!(diff.value(), tiny);
    }

    #[test]
    fn dd_mul_accuracy() {
        // (1+2^-50)·(1−2^-50) = 1 − 2^-100: representable only in dd.
        let a = Dd::from(1.0).add(Dd::from(2f64.powi(-50)));
        let b = Dd::from(1.0).sub(Dd::from(2f64.powi(-50)));
        let p = a.mul(b);
        let err = p.sub(Dd::from(1.0)).value();
        assert!((err + 2f64.powi(-100)).abs() < 1e-45, "err {err:e}");
    }

    #[test]
    fn determinant_sign_beyond_f64() {
        // ad - bc with ad and bc equal in f64 but not exactly.
        let a = 1.0 + 2f64.powi(-30);
        let d = 1.0 - 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-29);
        let c = (1.0 - 2f64.powi(-29)) + 2f64.powi(-55);
        let det = two_prod(a, d);
        let det = Dd::from(det.hi).add(Dd::from(det.lo));
        let bc = two_prod(b, c);
        let bc = Dd::from(bc.hi).add(Dd::from(bc.lo));
        let diff = det.sub(bc);
        // Exact reasoning: the 2^-55 term of c rounds away (below ulp/2 of
        // 1 − 2^-29), so c = 1 − 2^-29 exactly and bc = 1 − 2^-58. Then
        // ad − bc = (1 − 2^-60) − (1 − 2^-58) = 2^-58 − 2^-60 > 0 — a sign
        // plain f64 evaluation reports as 0.
        assert!(diff.value() > 0.0);
        assert_eq!((a * d - b * c), 0.0, "f64 alone cannot see the sign");
    }
}
