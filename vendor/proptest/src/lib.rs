//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! API subset used by this workspace's property tests (the build
//! environment has no access to crates.io).
//!
//! Supported surface:
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))]
//!   #[test] fn name(x in strategy, ...) { body } ... }`
//! * range strategies over unsigned integers and `f64` (`a..b`, `a..=b`),
//!   tuple strategies, `any::<T>()`, `proptest::collection::vec`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test PRNG (seeded by the test's module path and name, so runs are
//! reproducible), and failing cases are *not* shrunk — the failing values
//! appear in the assertion panic message instead.

pub mod test_runner {
    //! Configuration and the deterministic case PRNG.

    /// Run configuration; only the case count is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked with.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` to skip the current case.
    #[derive(Clone, Copy, Debug)]
    pub struct TestCaseSkip;

    /// Deterministic SplitMix64 stream seeded from the test identity.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// PRNG for the test named `path` (stable across runs).
        pub fn for_test(path: &str) -> Self {
            // FNV-1a over the test path gives a stable, distinct seed.
            let mut h = 0xcbf29ce484222325u64;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Unbiased uniform value in `[0, bound)`; `bound > 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= bound || (m as u64) >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Unbiased uniform value in `[0, bound)` for 128-bit bounds.
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            if bound <= u64::MAX as u128 {
                return self.below(bound as u64) as u128;
            }
            let bits = 128 - bound.leading_zeros();
            let mask = if bits == 128 {
                u128::MAX
            } else {
                (1u128 << bits) - 1
            };
            loop {
                let x = (((self.next_u64() as u128) << 64) | self.next_u64() as u128) & mask;
                if x < bound {
                    return x;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for sampling test inputs.

    use crate::test_runner::TestRng;

    /// A value generator for one property-test argument.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + rng.below_u128(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + rng.below_u128(span) as $t
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.below_u128(self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Closed upper end: scale so `end` is reachable at u == max.
            let (lo, hi) = (*self.start(), *self.end());
            let u = (rng.next_u64() >> 11) as f64 / 9_007_199_254_740_991.0;
            lo + (hi - lo) * u
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! uint_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    uint_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`](crate::arbitrary::any).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` entry point.

    use crate::strategy::{Any, Arbitrary};

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is uniform in `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Assert a boolean property of the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality of two expressions for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality of two expressions for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseSkip);
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            #[allow(clippy::redundant_closure_call)] // the closure hosts prop_assume! early returns
            fn $name() {
                let cfg = $cfg;
                let mut prop_rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);
                    )+
                    let _outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseSkip,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                }
            }
        )*
    };
}

/// Define property tests: each `#[test] fn name(x in strategy, ...)` runs
/// its body against `cases` random samples of the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::Config::default(); $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0.25f64..=0.75, n in 1usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u64..4, 0u64..4), xs in crate::collection::vec(0u32..100, 2..6)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for &x in &xs {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "assume must filter odd {}", x);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u64>()) {
            prop_assert_ne!(x, x.wrapping_add(1));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let mut r = TestRng::for_test("t");
        let b: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a, {
            let mut r = TestRng::for_test("other");
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        });
    }
}
