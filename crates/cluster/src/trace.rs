//! Cross-rank trace federation: worker span sidecars in, one
//! Perfetto-loadable timeline out.
//!
//! Each worker process buffers its spans with `kagen_obs::trace` and,
//! when launch telemetry is on, dumps them as a sidecar next to its
//! partial manifest (`part-<a>-<b>.trace.json`). The sidecar is itself
//! a valid Chrome trace (it has a `traceEvents` array), but its
//! timestamps are microseconds on the *worker's* monotonic clock — so
//! the header carries the wall-clock anchor captured when that clock's
//! epoch was pinned ([`kagen_obs::trace::epoch_unix_us`]), and the
//! coordinator realigns every worker event onto its own timeline:
//!
//! ```text
//! ts' = ts + (worker_anchor − coordinator_anchor)
//! ```
//!
//! [`federate_chrome_trace`] merges the coordinator's own spans with
//! every rank's realigned events into one JSON document: each process
//! keeps its real OS `pid` and gets a `process_name` metadata row
//! (`rank 2 worker (PEs 8..12)`), ranks sort under the coordinator, and
//! a flow arrow links each supervisor `rank-N` span to the worker
//! process-level span it spawned — retries included, because only the
//! successful attempt writes a sidecar, and the arrow starts from the
//! *last* `rank-N` span.
//!
//! Like every telemetry file, sidecars are plain extra files: the shard
//! pipeline never reads them and output bytes are untouched.

use kagen_obs::metrics::escape_json_into;
use kagen_obs::TraceEvent;
use kagen_pipeline::manifest::json;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag of the worker trace sidecar.
pub const TRACE_SIDECAR_SCHEMA: &str = "kagen-trace-sidecar/v1";

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Sidecar file name for the rank covering PEs `[pe_begin, pe_end)`.
pub fn trace_sidecar_file_name(pe_begin: u64, pe_end: u64) -> String {
    format!("part-{pe_begin:05}-{pe_end:05}.trace.json")
}

/// One worker process's span buffer plus the header fields federation
/// needs: its OS pid and the wall-clock anchor of its trace epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTrace {
    /// The worker's OS process id.
    pub pid: u64,
    /// Wall-clock unix microseconds when the worker's trace epoch was
    /// pinned; every event `ts_us` is relative to this instant.
    pub epoch_unix_us: u64,
    /// The worker's finished spans.
    pub events: Vec<TraceEvent>,
}

fn events_json(out: &mut String, events: &[TraceEvent], pid: u64, ts_shift: i64) {
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Clamp at zero: trace viewers accept negative timestamps, but
        // the workspace's u64-only JSON parser (which tests round-trip
        // through) does not — and a worker event genuinely predating
        // the coordinator epoch only occurs under clock skew.
        let ts = (ev.ts_us as i64 + ts_shift).max(0) as u64;
        out.push_str("{\"name\":");
        escape_json_into(out, &ev.name);
        out.push_str(&format!(
            ",\"cat\":\"kagen\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
            ts, ev.dur_us, pid, ev.tid
        ));
    }
}

/// Serialize this process's current span buffer as a sidecar document.
/// A valid Chrome trace in its own right, with the federation header
/// fields (`schema`, `pid`, `epoch_unix_us`) as extra top-level keys
/// that trace viewers ignore.
pub fn sidecar_json() -> String {
    let events = kagen_obs::trace::events();
    let pid = std::process::id() as u64;
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"schema\":");
    escape_json_into(&mut out, TRACE_SIDECAR_SCHEMA);
    out.push_str(&format!(
        ",\"pid\":{},\"epoch_unix_us\":{},\"traceEvents\":[",
        pid,
        kagen_obs::trace::epoch_unix_us()
    ));
    events_json(&mut out, &events, pid, 0);
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Write this process's span buffer as the trace sidecar for PEs
/// `[pe_begin, pe_end)`. Called by the worker after its partial
/// manifest is complete.
pub fn write_sidecar(dir: &Path, pe_begin: u64, pe_end: u64) -> io::Result<PathBuf> {
    let path = dir.join(trace_sidecar_file_name(pe_begin, pe_end));
    std::fs::write(&path, sidecar_json())?;
    Ok(path)
}

/// Load (and leave in place) the trace sidecar for PEs
/// `[pe_begin, pe_end)`. `Ok(None)` if no sidecar exists — the worker
/// ran without tracing.
pub fn load_sidecar(dir: &Path, pe_begin: u64, pe_end: u64) -> io::Result<Option<WorkerTrace>> {
    let path = dir.join(trace_sidecar_file_name(pe_begin, pe_end));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let parse = || -> Result<WorkerTrace, String> {
        let doc = json::parse(&text)?;
        let obj = doc.as_obj("trace sidecar")?;
        let schema = obj.get("schema")?.as_str("schema")?;
        if schema != TRACE_SIDECAR_SCHEMA {
            return Err(format!("unsupported trace sidecar schema '{schema}'"));
        }
        let mut events = Vec::new();
        for v in obj.get("traceEvents")?.as_arr("traceEvents")? {
            let e = v.as_obj("trace event")?;
            events.push(TraceEvent {
                name: e.get("name")?.as_str("name")?.to_string(),
                ts_us: e.get("ts")?.as_u64("ts")?,
                dur_us: e.get("dur")?.as_u64("dur")?,
                tid: e.get("tid")?.as_u64("tid")?,
            });
        }
        Ok(WorkerTrace {
            pid: obj.get("pid")?.as_u64("pid")?,
            epoch_unix_us: obj.get("epoch_unix_us")?.as_u64("epoch_unix_us")?,
            events,
        })
    };
    parse().map(Some).map_err(invalid)
}

/// One rank's collected worker trace, tagged with its plan position.
#[derive(Clone, Debug)]
pub struct RankTrace {
    /// Rank id (plan order).
    pub rank: u64,
    /// First PE of the rank's contiguous range.
    pub pe_begin: u64,
    /// One past the rank's last PE.
    pub pe_end: u64,
    /// The worker's sidecar payload.
    pub trace: WorkerTrace,
}

fn metadata_row(out: &mut String, pid: u64, name: &str, sort_index: u64) {
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
    out.push_str(&format!("{pid},\"tid\":0,\"args\":{{\"name\":"));
    escape_json_into(out, name);
    out.push_str("}},");
    out.push_str(&format!(
        "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"sort_index\":{sort_index}}}}}"
    ));
}

/// The timestamp/tid anchor of a rank's process-level span: the
/// outermost `worker.generate` span when present, else the earliest
/// event.
fn worker_anchor(events: &[TraceEvent]) -> Option<&TraceEvent> {
    events
        .iter()
        .find(|e| e.name == "worker.generate")
        .or_else(|| events.iter().min_by_key(|e| e.ts_us))
}

/// Merge the coordinator's current span buffer with every rank's
/// sidecar into one Chrome trace JSON document (see the module docs
/// for the shape). Timestamps are realigned onto the coordinator's
/// clock via the sidecar wall anchors.
pub fn federate_chrome_trace(ranks: &[RankTrace]) -> String {
    federate_with(
        &WorkerTrace {
            pid: std::process::id() as u64,
            epoch_unix_us: kagen_obs::trace::epoch_unix_us(),
            events: kagen_obs::trace::events(),
        },
        ranks,
    )
}

/// [`federate_chrome_trace`] against an explicit coordinator view
/// instead of this process's live trace buffer (deterministic tests,
/// offline re-federation of saved sidecars).
pub fn federate_with(coord: &WorkerTrace, ranks: &[RankTrace]) -> String {
    let coord_events = &coord.events;
    let coord_pid = coord.pid;
    let coord_anchor = coord.epoch_unix_us as i64;

    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    metadata_row(&mut out, coord_pid, "kagen launch (coordinator)", 0);
    for rt in ranks {
        out.push(',');
        metadata_row(
            &mut out,
            rt.trace.pid,
            &format!(
                "rank {} worker (PEs {}..{})",
                rt.rank, rt.pe_begin, rt.pe_end
            ),
            rt.rank + 1,
        );
    }
    if !coord_events.is_empty() {
        out.push(',');
        events_json(&mut out, coord_events, coord_pid, 0);
    }
    for rt in ranks {
        if rt.trace.events.is_empty() {
            continue;
        }
        let shift = rt.trace.epoch_unix_us as i64 - coord_anchor;
        out.push(',');
        events_json(&mut out, &rt.trace.events, rt.trace.pid, shift);
    }
    // Flow arrows: supervisor `rank-N` span -> worker process span.
    // A retried rank has several `rank-N` spans; the sidecar belongs to
    // the successful (last) attempt, so the arrow starts there.
    for rt in ranks {
        let Some(rank_span) = coord_events
            .iter()
            .filter(|e| e.name == format!("rank-{}", rt.rank))
            .max_by_key(|e| e.ts_us)
        else {
            continue;
        };
        let Some(anchor) = worker_anchor(&rt.trace.events) else {
            continue;
        };
        let shift = rt.trace.epoch_unix_us as i64 - coord_anchor;
        let worker_ts = (anchor.ts_us as i64 + shift).max(0) as u64;
        out.push(',');
        out.push_str(&format!(
            "{{\"name\":\"rank-{r}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{r},\
             \"ts\":{},\"pid\":{},\"tid\":{}}}",
            rank_span.ts_us,
            coord_pid,
            rank_span.tid,
            r = rt.rank,
        ));
        out.push_str(&format!(
            ",{{\"name\":\"rank-{r}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{r},\"ts\":{},\"pid\":{},\"tid\":{}}}",
            worker_ts,
            rt.trace.pid,
            anchor.tid,
            r = rt.rank,
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Write the federated timeline (see [`federate_chrome_trace`]) to
/// `path`.
pub fn write_federated_chrome_trace(path: &Path, ranks: &[RankTrace]) -> io::Result<()> {
    std::fs::write(path, federate_chrome_trace(ranks))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts_us: u64, dur_us: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            ts_us,
            dur_us,
            tid,
        }
    }

    #[test]
    fn sidecar_roundtrip_preserves_events_and_anchor() {
        let dir = std::env::temp_dir().join("kagen_trace_sidecar_rt");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_sidecar(&dir, 4, 8).unwrap().is_none());
        // Hand-written sidecar with a known anchor.
        std::fs::write(
            dir.join(trace_sidecar_file_name(4, 8)),
            "{\"schema\":\"kagen-trace-sidecar/v1\",\"pid\":4242,\
             \"epoch_unix_us\":1000000,\"traceEvents\":[{\"name\":\"worker.generate\",\
             \"cat\":\"kagen\",\"ph\":\"X\",\"ts\":5,\"dur\":90,\"pid\":4242,\"tid\":1}],\
             \"displayTimeUnit\":\"ms\"}",
        )
        .unwrap();
        let wt = load_sidecar(&dir, 4, 8).unwrap().unwrap();
        assert_eq!(wt.pid, 4242);
        assert_eq!(wt.epoch_unix_us, 1_000_000);
        assert_eq!(wt.events, vec![ev("worker.generate", 5, 90, 1)]);
        // Unknown schema is rejected, not silently misread.
        std::fs::write(
            dir.join(trace_sidecar_file_name(4, 8)),
            "{\"schema\":\"kagen-trace-sidecar/v9\",\"pid\":1,\"epoch_unix_us\":1,\
             \"traceEvents\":[]}",
        )
        .unwrap();
        assert!(load_sidecar(&dir, 4, 8).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_sidecar_is_chrome_shaped_and_parses_back() {
        let dir = std::env::temp_dir().join("kagen_trace_sidecar_live");
        std::fs::create_dir_all(&dir).unwrap();
        kagen_obs::trace::set_enabled(true);
        let s = kagen_obs::trace::span("test.trace.live");
        let _ = s.finish();
        write_sidecar(&dir, 0, 2).unwrap();
        let wt = load_sidecar(&dir, 0, 2).unwrap().unwrap();
        assert_eq!(wt.pid, std::process::id() as u64);
        assert_eq!(wt.epoch_unix_us, kagen_obs::trace::epoch_unix_us());
        assert!(wt.events.iter().any(|e| e.name == "test.trace.live"));
        kagen_obs::trace::set_enabled(false);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn federation_realigns_names_and_links() {
        // Worker epochs 100us and 250us after the coordinator's: their
        // events must shift forward by exactly that delta.
        let coord_anchor = 5_000_000u64;
        let coord = WorkerTrace {
            pid: 8000,
            epoch_unix_us: coord_anchor,
            events: vec![ev("launch.supervise", 0, 900, 1)],
        };
        let ranks = vec![
            RankTrace {
                rank: 0,
                pe_begin: 0,
                pe_end: 4,
                trace: WorkerTrace {
                    pid: 9001,
                    epoch_unix_us: coord_anchor + 100,
                    events: vec![
                        ev("worker.generate", 10, 500, 1),
                        ev("pipeline.shard", 20, 80, 2),
                    ],
                },
            },
            RankTrace {
                rank: 1,
                pe_begin: 4,
                pe_end: 8,
                trace: WorkerTrace {
                    pid: 9002,
                    epoch_unix_us: coord_anchor + 250,
                    events: vec![ev("worker.generate", 40, 300, 1)],
                },
            },
        ];
        let json_text = federate_with(&coord, &ranks);
        // Parses with the workspace's own (u64-only) parser.
        let doc = json::parse(&json_text).unwrap();
        let events = doc
            .as_obj("trace")
            .unwrap()
            .get("traceEvents")
            .unwrap()
            .as_arr("traceEvents")
            .unwrap()
            .to_vec();
        // Distinct pid rows with names for both workers.
        assert!(json_text.contains("\"rank 0 worker (PEs 0..4)\""));
        assert!(json_text.contains("\"rank 1 worker (PEs 4..8)\""));
        assert!(json_text.contains("\"pid\":9001"));
        assert!(json_text.contains("\"pid\":9002"));
        // Realigned timestamps: 10+100 and 40+250.
        let find = |pid: u64, name: &str| {
            events
                .iter()
                .filter_map(|v| v.as_obj("e").ok())
                .find(|e| {
                    e.get("pid").ok().and_then(|p| p.as_u64("pid").ok()) == Some(pid)
                        && e.get("name")
                            .ok()
                            .and_then(|n| n.as_str("n").ok().map(String::from))
                            == Some(name.to_string())
                })
                .unwrap_or_else(|| panic!("missing event {name} pid {pid}"))
        };
        assert_eq!(
            find(9001, "worker.generate")
                .get("ts")
                .unwrap()
                .as_u64("ts")
                .unwrap(),
            110
        );
        assert_eq!(
            find(9002, "worker.generate")
                .get("ts")
                .unwrap()
                .as_u64("ts")
                .unwrap(),
            290
        );
    }

    #[test]
    fn federation_links_flows_to_last_rank_span() {
        // The coordinator saw two rank-0 spans (a failed and a
        // successful attempt); the flow must start from the later one,
        // because only the successful attempt wrote a sidecar.
        let coord = WorkerTrace {
            pid: 8000,
            epoch_unix_us: 5_000_000,
            events: vec![ev("rank-0", 10, 40, 2), ev("rank-0", 600, 80, 3)],
        };
        let ranks = vec![RankTrace {
            rank: 0,
            pe_begin: 0,
            pe_end: 2,
            trace: WorkerTrace {
                pid: 7001,
                epoch_unix_us: 5_000_000 + 620,
                events: vec![ev("worker.generate", 3, 50, 1)],
            },
        }];
        let json_text = federate_with(&coord, &ranks);
        assert!(
            json_text.contains(
                "\"cat\":\"flow\",\"ph\":\"s\",\"id\":0,\"ts\":600,\"pid\":8000,\"tid\":3"
            ),
            "{json_text}"
        );
        assert!(
            json_text
                .contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":0,\"ts\":623,\"pid\":7001,\"tid\":1"),
            "{json_text}"
        );
        // A rank with no events gets a pid row but no flow arrow.
        let bare = vec![RankTrace {
            rank: 1,
            pe_begin: 2,
            pe_end: 4,
            trace: WorkerTrace::default(),
        }];
        let json_text = federate_with(&coord, &bare);
        assert!(json_text.contains("rank 1 worker"));
        assert!(!json_text.contains("\"id\":1,"));
    }
}
