//! # kagen-geometry
//!
//! Spatial infrastructure for the geometric generators (RGG, RDG, RHG):
//!
//! * [`point`] — fixed-dimension points in the unit cube / torus;
//! * [`morton`] — Z-order (Morton) curves for locality-aware chunk
//!   assignment (§5.1 / \[35\]);
//! * [`grid`] — power-of-two cell grids over `[0,1)^d` with neighbor
//!   iteration (periodic or clamped);
//! * [`counts`] — the 2^d-ary *count-splitting tree*: recursive binomial
//!   partitioning of `n` points over the grid with subtree-seeded PRNGs, so
//!   any PE can derive the content of any cell without communication;
//! * [`cell_points`] — deterministic per-cell point generation;
//! * [`cell_stream`] — the cell-cursor streaming core: a
//!   regenerate-on-miss frontier cache with retire-rank eviction plus a
//!   Morton cell-range cursor, so spatial generators stream edges with
//!   memory bounded by the active cell neighborhood;
//! * [`hyperbolic`] — the hyperbolic plane toolbox of §7 (radial sampling,
//!   distance, Δθ bounds, trig-free adjacency via precomputation, annuli).

pub mod cell_points;
pub mod cell_stream;
pub mod counts;
pub mod grid;
pub mod hyperbolic;
pub mod morton;
pub mod point;

pub use cell_stream::{CellRangeCursor, FrontierCache, FrontierStats};
pub use counts::CountTree;
pub use grid::CellGrid;
pub use point::Point;
