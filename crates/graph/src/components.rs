//! Union–find connected components (path halving + union by size).
//!
//! Used by tests and examples to validate structural properties the models
//! predict, e.g. the RGG connectivity threshold r ≈ 0.55·sqrt(ln n / n).

use crate::{EdgeList, Node};

/// Disjoint-set forest over `0..n`.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind limited to 2^32 vertices");
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grandparent = self.parent[self.parent[x] as usize];
            self.parent[x] = grandparent;
            x = grandparent as usize;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Size of the largest set.
    pub fn largest_component(&mut self) -> usize {
        let n = self.parent.len();
        let mut best = 0;
        for v in 0..n {
            if self.find(v) == v {
                best = best.max(self.size[v] as usize);
            }
        }
        best
    }
}

/// Component statistics of an undirected edge list.
pub fn connected_components(el: &EdgeList) -> UnionFind {
    let mut uf = UnionFind::new(el.n as usize);
    for &(u, v) in &el.edges {
        uf.union(u as usize, v as usize);
    }
    uf
}

/// Convenience: is the graph connected (n >= 1)?
pub fn is_connected(el: &EdgeList) -> bool {
    el.n <= 1 || connected_components(el).component_count() == 1
}

/// Map every vertex to a dense component label.
pub fn component_labels(el: &EdgeList) -> Vec<u32> {
    let mut uf = connected_components(el);
    let n = el.n as usize;
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut out = vec![0u32; n];
    for (v, slot) in out.iter_mut().enumerate() {
        let r = uf.find(v);
        if label[r] == u32::MAX {
            label[r] = next;
            next += 1;
        }
        *slot = label[r];
    }
    out
}

/// Re-export friendly alias used by tests.
pub type _Node = Node;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    #[test]
    fn singletons() {
        let uf = connected_components(&EdgeList::new(5, vec![]));
        assert_eq!(uf.component_count(), 5);
    }

    #[test]
    fn path_is_connected() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&el));
    }

    #[test]
    fn two_components() {
        let el = EdgeList::new(5, vec![(0, 1), (2, 3)]);
        let mut uf = connected_components(&el);
        assert_eq!(uf.component_count(), 3); // {0,1} {2,3} {4}
        assert_eq!(uf.largest_component(), 2);
        assert_eq!(uf.component_size(4), 1);
    }

    #[test]
    fn union_reports_merges() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn labels_dense_and_consistent() {
        let el = EdgeList::new(6, vec![(0, 3), (1, 4), (4, 5)]);
        let labels = component_labels(&el);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[1], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[0]);
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn large_random_union_stress() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        // Chain everything: exactly n-1 successful unions.
        let mut merges = 0;
        for i in 1..n {
            if uf.union(i - 1, i) {
                merges += 1;
            }
        }
        assert_eq!(merges, n - 1);
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.largest_component(), n);
    }
}
