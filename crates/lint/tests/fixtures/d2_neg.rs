// Fixture: D2 must stay silent — the clock names only appear in
// comments and strings, never as code.
//
// Instant::now() and SystemTime::now() are banned outside kagen_obs.

pub fn describe() -> &'static str {
    "timing goes through kagen_obs spans, not Instant::now()"
}

pub fn chunk_count(requested: usize) -> usize {
    requested.max(1)
}
